#include "partition/kl.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Edge;
using graph::Graph;

namespace {

struct SwapRecord {
  NodeId a;  // moved side 0 -> 1
  NodeId b;  // moved side 1 -> 0
  Weight gain;
};

struct NodeD {
  NodeId node;
  Weight d;
};

// Candidate best pair from one pair-search round.
struct BestPair {
  bool found = false;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Weight gain = 0;
};

// The paper's scheme: sort each side by D descending, enumerate pairs in
// decreasing D-sum order via a heap (diagonal scanning), stop when the
// current D-sum cannot beat the best gain found.
BestPair diagonal_scan_best_pair(const Graph& g,
                                 const std::vector<NodeD>& side0,
                                 const std::vector<NodeD>& side1,
                                 double* work) {
  BestPair best;
  if (side0.empty() || side1.empty()) return best;

  struct HeapEntry {
    Weight dsum;
    std::uint32_t i, j;
    bool operator<(const HeapEntry& other) const { return dsum < other.dsum; }
  };
  std::priority_queue<HeapEntry> heap;
  heap.push(HeapEntry{side0[0].d + side1[0].d, 0, 0});

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (work != nullptr) *work += std::log2(static_cast<double>(heap.size()) + 2.0);
    if (best.found && top.dsum <= best.gain) break;  // no pair can beat gmax
    const NodeId a = side0[top.i].node;
    const NodeId b = side1[top.j].node;
    const Weight gain = top.dsum - 2 * g.edge_weight(a, b);
    if (work != nullptr) {
      *work += std::log2(static_cast<double>(g.degree(a)) + 2.0);
    }
    if (!best.found || gain > best.gain) {
      best.found = true;
      best.a = a;
      best.b = b;
      best.gain = gain;
    }
    if (top.i + 1 < side0.size()) {
      heap.push(HeapEntry{side0[top.i + 1].d + side1[top.j].d, top.i + 1,
                          top.j});
    }
    if (top.i == 0 && top.j + 1 < side1.size()) {
      heap.push(HeapEntry{side0[top.i].d + side1[top.j + 1].d, 0, top.j + 1});
    }
  }
  return best;
}

// Naive fallback: examine every unlocked pair (O(n^2) per swap). Used by the
// ablation bench to show the value of diagonal scanning.
BestPair naive_best_pair(const Graph& g, const std::vector<NodeD>& side0,
                         const std::vector<NodeD>& side1, double* work) {
  BestPair best;
  for (const NodeD& a : side0) {
    for (const NodeD& b : side1) {
      if (work != nullptr) *work += 1.0;
      const Weight gain = a.d + b.d - 2 * g.edge_weight(a.node, b.node);
      if (!best.found || gain > best.gain ||
          (gain == best.gain && (a.node < best.a ||
                                 (a.node == best.a && b.node < best.b)))) {
        best.found = true;
        best.a = a.node;
        best.b = b.node;
        best.gain = gain;
      }
    }
  }
  return best;
}

/// Below this the D-value sweep is cheaper than waking the pool.
constexpr std::size_t kParallelKlMinNodes = 512;

}  // namespace

Weight kl_bisection_refine(const Graph& g, std::vector<PartId>& part,
                           const KlConfig& config, double* work,
                           ThreadPool* pool) {
  const std::size_t n = g.node_count();
  FOCUS_CHECK(part.size() == n, "partition size mismatch");
  for (const PartId p : part) {
    FOCUS_CHECK(p == 0 || p == 1, "kl_bisection_refine requires a bisection");
  }

  Weight cut = edge_cut(g, part);
  if (work != nullptr) *work += static_cast<double>(g.edge_count());

  const bool pooled =
      pool != nullptr && pool->thread_count() > 1 && n >= kParallelKlMinNodes;

  std::vector<Weight> d(n);
  std::vector<bool> locked(n);

  // D value of one node: external minus internal incident weight.
  const auto d_of = [&](NodeId v) {
    Weight e = 0, i = 0;
    for (const Edge& edge : g.neighbors(v)) {
      if (part[edge.to] == part[v]) {
        i += edge.weight;
      } else {
        e += edge.weight;
      }
    }
    return e - i;
  };

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    // D-value initialization: parallel scoring into per-node slots (each
    // d[v] is a pure function of the pass-entry partition, so the sweep
    // order cannot matter); work is charged in the serial index order
    // afterwards so the float accumulation matches the serial path exactly.
    if (pooled) {
      pool->parallel_for(n, 512, [&](std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) d[v] = d_of(static_cast<NodeId>(v));
      });
      if (work != nullptr) {
        for (NodeId v = 0; v < n; ++v) {
          *work += static_cast<double>(g.degree(v));
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        d[v] = d_of(v);
        if (work != nullptr) *work += static_cast<double>(g.degree(v));
      }
    }
    std::fill(locked.begin(), locked.end(), false);

    std::vector<SwapRecord> swaps;
    Weight running = 0;
    Weight best_sum = 0;
    std::size_t best_index = 0;  // number of swaps kept
    std::size_t idle = 0;

    for (;;) {
      // Collect unlocked nodes per side, sorted by D descending (ties by id
      // for determinism).
      std::vector<NodeD> side0, side1;
      for (NodeId v = 0; v < n; ++v) {
        if (locked[v]) continue;
        (part[v] == 0 ? side0 : side1).push_back(NodeD{v, d[v]});
      }
      auto by_d = [](const NodeD& x, const NodeD& y) {
        if (x.d != y.d) return x.d > y.d;
        return x.node < y.node;
      };
      std::sort(side0.begin(), side0.end(), by_d);
      std::sort(side1.begin(), side1.end(), by_d);
      if (work != nullptr) {
        const auto total = static_cast<double>(side0.size() + side1.size());
        *work += total * std::log2(total + 2.0);
      }

      const BestPair best =
          config.diagonal_scanning
              ? diagonal_scan_best_pair(g, side0, side1, work)
              : naive_best_pair(g, side0, side1, work);
      if (!best.found) break;

      // Perform the swap.
      part[best.a] = 1;
      part[best.b] = 0;
      locked[best.a] = true;
      locked[best.b] = true;
      running += best.gain;
      swaps.push_back(SwapRecord{best.a, best.b, best.gain});

      // Update D values of unlocked neighbors.
      for (const Edge& e : g.neighbors(best.a)) {
        if (locked[e.to]) continue;
        // a left side 0: side-0 neighbors gained an external edge (+2w),
        // side-1 neighbors gained an internal edge (−2w).
        d[e.to] += part[e.to] == 0 ? 2 * e.weight : -2 * e.weight;
        if (work != nullptr) *work += 1.0;
      }
      for (const Edge& e : g.neighbors(best.b)) {
        if (locked[e.to]) continue;
        d[e.to] += part[e.to] == 1 ? 2 * e.weight : -2 * e.weight;
        if (work != nullptr) *work += 1.0;
      }

      if (running > best_sum) {
        best_sum = running;
        best_index = swaps.size();
        idle = 0;
      } else if (++idle >= config.idle_swap_limit) {
        break;
      }
    }

    // Roll back swaps beyond the maximal partial sum.
    for (std::size_t s = swaps.size(); s > best_index; --s) {
      const SwapRecord& rec = swaps[s - 1];
      part[rec.a] = 0;
      part[rec.b] = 1;
    }
    if (best_sum <= 0) break;  // no improvement: refinement converged
    cut -= best_sum;
  }
  FOCUS_ASSERT(cut == edge_cut(g, part), "tracked cut diverged from graph");
  return cut;
}

}  // namespace focus::partition
