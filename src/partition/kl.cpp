#include "partition/kl.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Edge;
using graph::Graph;

namespace {

struct SwapRecord {
  NodeId a;  // moved side 0 -> 1
  NodeId b;  // moved side 1 -> 0
  Weight gain;
};

struct NodeD {
  NodeId node;
  Weight d;
};

// Candidate best pair from one pair-search round. (i, j) are the pair's
// indices into the sorted side arrays; together with dsum they carry the
// tie-break key of the total order below.
struct BestPair {
  bool found = false;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Weight gain = 0;
  Weight dsum = 0;
  std::size_t i = 0, j = 0;
};

// Total order shared by every pair-search strategy: larger gain wins, ties
// break toward the larger D-sum, then the smaller side-0 index, then the
// smaller side-1 index. The side arrays are sorted by the total order
// (D desc, node id asc), so the key is a pure function of (graph, part) —
// independent of the strategy, the chunking, the pool width, and the
// standard library.
//
// Why index order and not plain node-id order: gain == D-sum for every
// zero-weight (non-adjacent) pair, so when the winning gain lands on an
// equal-D-sum plateau, *all* non-adjacent pairs on the plateau tie. A
// node-id tie-break would force every strategy to enumerate the whole
// plateau (measured ~5x total KL work on the Fig. 4 graph sets); breaking
// ties in diagonal-enumeration order instead lets the scans keep their
// cannot-beat-or-tie cutoff, because every pair the cutoff prunes compares
// strictly below the incumbent under this order.
bool improves(const BestPair& best, Weight gain, Weight dsum, std::size_t i,
              std::size_t j) {
  if (!best.found) return true;
  if (gain != best.gain) return gain > best.gain;
  if (dsum != best.dsum) return dsum > best.dsum;
  if (i != best.i) return i < best.i;
  return j < best.j;
}

// The paper's scheme: sort each side by D descending, enumerate pairs in
// decreasing D-sum order via a heap (diagonal scanning), stop once the next
// D-sum cannot beat or tie the best gain found. The cutoff may fire on
// dsum == best.gain: a pair there can at best tie the incumbent's gain with
// an equal-or-smaller D-sum and a later enumeration position, which loses
// the total order.
BestPair diagonal_scan_best_pair(const Graph& g,
                                 const std::vector<NodeD>& side0,
                                 const std::vector<NodeD>& side1,
                                 double* work) {
  BestPair best;
  if (side0.empty() || side1.empty()) return best;

  struct HeapEntry {
    Weight dsum;
    std::uint32_t i, j;
    // Total order: pop by descending D-sum, ties by ascending (i, j). A
    // comparator that looked only at dsum would leave the pop order of
    // equal-dsum entries implementation-defined (it varies between
    // libstdc++ and libc++ heap layouts) — with the total order the popped
    // maximum is unique, so the scan order is the same on every stdlib.
    bool operator<(const HeapEntry& other) const {
      if (dsum != other.dsum) return dsum < other.dsum;
      if (i != other.i) return i > other.i;
      return j > other.j;
    }
  };
  std::priority_queue<HeapEntry> heap;
  heap.push(HeapEntry{side0[0].d + side1[0].d, 0, 0});

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (work != nullptr) *work += std::log2(static_cast<double>(heap.size()) + 2.0);
    if (best.found && top.dsum <= best.gain) break;  // no pair can win
    const NodeId a = side0[top.i].node;
    const NodeId b = side1[top.j].node;
    const Weight gain = top.dsum - 2 * g.edge_weight(a, b);
    if (work != nullptr) {
      *work += std::log2(static_cast<double>(g.degree(a)) + 2.0);
    }
    if (improves(best, gain, top.dsum, top.i, top.j)) {
      best.found = true;
      best.a = a;
      best.b = b;
      best.gain = gain;
      best.dsum = top.dsum;
      best.i = top.i;
      best.j = top.j;
    }
    if (top.i + 1 < side0.size()) {
      heap.push(HeapEntry{side0[top.i + 1].d + side1[top.j].d, top.i + 1,
                          top.j});
    }
    if (top.i == 0 && top.j + 1 < side1.size()) {
      heap.push(HeapEntry{side0[top.i].d + side1[top.j + 1].d, 0, top.j + 1});
    }
  }
  return best;
}

/// Side-0 rows per chunk of the chunked pair search. The decomposition is a
/// pure function of the row count, so per-chunk work merges identically at
/// every pool width (the charges are whole pair counts — exact in a double).
constexpr std::size_t kPairChunkRows = 64;

// Chunked bounded scan — the pool-parallel diagonal strategy. Each chunk of
// side-0 rows scans side-1 in D order and stops a row (or the whole chunk,
// since rows are sorted by D descending) as soon as the D-sum can no longer
// beat or tie the chunk-local best, which is seeded with the top D-sum pair
// so pruning is active from the first row. Chunk-local pruning never drops
// a global winner: a pruned pair has gain <= dsum <= local best gain, and
// on equality it ties the local best's gain at an equal-or-smaller D-sum
// and a later (i, j) — strictly below it in the total order. The per-chunk
// winners and work counts merge in chunk order.
BestPair chunked_best_pair(const Graph& g, const std::vector<NodeD>& side0,
                           const std::vector<NodeD>& side1, double* work,
                           double* pooled_work, ThreadPool* pool) {
  BestPair seed;
  seed.found = true;
  seed.a = side0[0].node;
  seed.b = side1[0].node;
  seed.dsum = side0[0].d + side1[0].d;
  seed.gain = seed.dsum - 2 * g.edge_weight(seed.a, seed.b);
  seed.i = 0;
  seed.j = 0;
  if (work != nullptr) *work += 1.0;

  struct ChunkResult {
    BestPair best;
    double work = 0.0;
  };
  const auto scan_chunk = [&](std::size_t begin, std::size_t end) {
    ChunkResult r;
    r.best = seed;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeD& a = side0[i];
      if (a.d + side1[0].d <= r.best.gain) break;  // rows sorted by D desc
      for (std::size_t j = 0; j < side1.size(); ++j) {
        const NodeD& b = side1[j];
        const Weight dsum = a.d + b.d;
        if (dsum <= r.best.gain) break;
        r.work += 1.0;
        const Weight gain = dsum - 2 * g.edge_weight(a.node, b.node);
        if (improves(r.best, gain, dsum, i, j)) {
          r.best.a = a.node;
          r.best.b = b.node;
          r.best.gain = gain;
          r.best.dsum = dsum;
          r.best.i = i;
          r.best.j = j;
        }
      }
    }
    return r;
  };
  const auto merge = [](ChunkResult acc, ChunkResult chunk) {
    if (improves(acc.best, chunk.best.gain, chunk.best.dsum, chunk.best.i,
                 chunk.best.j)) {
      acc.best = chunk.best;
    }
    acc.work += chunk.work;
    return acc;
  };

  ChunkResult init;
  init.best = seed;
  ChunkResult total;
  if (pool != nullptr && pool->thread_count() > 1) {
    total = pool->parallel_reduce(side0.size(), kPairChunkRows,
                                  std::move(init), scan_chunk, merge);
  } else {
    total = std::move(init);
    for (std::size_t begin = 0; begin < side0.size();
         begin += kPairChunkRows) {
      total = merge(std::move(total),
                    scan_chunk(begin, std::min(side0.size(),
                                               begin + kPairChunkRows)));
    }
  }
  if (work != nullptr) *work += total.work;
  if (pooled_work != nullptr) *pooled_work += total.work;
  return total.best;
}

// Naive fallback: examine every unlocked pair (O(n^2) per swap). Kept for
// the ablation bench; chunk-parallel on a pool, with the chunk winners and
// the (integer-valued) work counts merged in chunk order so the result and
// the accounting equal the serial scan's at every width.
BestPair naive_best_pair(const Graph& g, const std::vector<NodeD>& side0,
                         const std::vector<NodeD>& side1, double* work,
                         ThreadPool* pool) {
  const auto scan_row_range = [&](std::size_t begin, std::size_t end) {
    BestPair best;
    for (std::size_t i = begin; i < end; ++i) {
      const NodeD& a = side0[i];
      for (std::size_t j = 0; j < side1.size(); ++j) {
        const NodeD& b = side1[j];
        const Weight dsum = a.d + b.d;
        const Weight gain = dsum - 2 * g.edge_weight(a.node, b.node);
        if (improves(best, gain, dsum, i, j)) {
          best.found = true;
          best.a = a.node;
          best.b = b.node;
          best.gain = gain;
          best.dsum = dsum;
          best.i = i;
          best.j = j;
        }
      }
    }
    return best;
  };
  BestPair best;
  if (pool != nullptr && pool->thread_count() > 1 &&
      side0.size() >= 2 * kPairChunkRows) {
    best = pool->parallel_reduce(
        side0.size(), kPairChunkRows, BestPair{},
        scan_row_range, [](BestPair acc, BestPair chunk) {
          if (chunk.found &&
              improves(acc, chunk.gain, chunk.dsum, chunk.i, chunk.j)) {
            acc = chunk;
          }
          return acc;
        });
  } else {
    best = scan_row_range(0, side0.size());
  }
  if (work != nullptr) {
    *work += static_cast<double>(side0.size()) *
             static_cast<double>(side1.size());
  }
  return best;
}

/// Below this the D-value sweep is cheaper than waking the pool.
constexpr std::size_t kParallelKlMinNodes = 512;

}  // namespace

Weight kl_bisection_refine(const Graph& g, std::vector<PartId>& part,
                           const KlConfig& config, double* work,
                           ThreadPool* pool, double* pooled_work) {
  const std::size_t n = g.node_count();
  FOCUS_CHECK(part.size() == n, "partition size mismatch");
  for (const PartId p : part) {
    FOCUS_CHECK(p == 0 || p == 1, "kl_bisection_refine requires a bisection");
  }

  Weight cut = edge_cut(g, part);
  if (work != nullptr) *work += static_cast<double>(g.edge_count());

  const bool pooled =
      pool != nullptr && pool->thread_count() > 1 && n >= kParallelKlMinNodes;

  std::vector<Weight> d(n);
  std::vector<bool> locked(n);

  // D value of one node: external minus internal incident weight.
  const auto d_of = [&](NodeId v) {
    Weight e = 0, i = 0;
    for (const Edge& edge : g.neighbors(v)) {
      if (part[edge.to] == part[v]) {
        i += edge.weight;
      } else {
        e += edge.weight;
      }
    }
    return e - i;
  };

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    // D-value initialization: parallel scoring into per-node slots (each
    // d[v] is a pure function of the pass-entry partition, so the sweep
    // order cannot matter); work is charged in the serial index order
    // afterwards so the float accumulation matches the serial path exactly.
    if (pooled) {
      pool->parallel_for(n, 512, [&](std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) d[v] = d_of(static_cast<NodeId>(v));
      });
      if (work != nullptr) {
        for (NodeId v = 0; v < n; ++v) {
          *work += static_cast<double>(g.degree(v));
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        d[v] = d_of(v);
        if (work != nullptr) *work += static_cast<double>(g.degree(v));
      }
    }
    // Pool-parallelizable share of this pass, for the bench's speedup model.
    // Gated on the instance size alone (not the pool width) so the figure is
    // identical at every width.
    if (pooled_work != nullptr && n >= kParallelKlMinNodes) {
      for (NodeId v = 0; v < n; ++v) {
        *pooled_work += static_cast<double>(g.degree(v));
      }
    }
    std::fill(locked.begin(), locked.end(), false);

    std::vector<SwapRecord> swaps;
    Weight running = 0;
    Weight best_sum = 0;
    std::size_t best_index = 0;  // number of swaps kept
    std::size_t idle = 0;

    for (;;) {
      // Collect unlocked nodes per side, sorted by D descending (ties by id
      // for determinism).
      std::vector<NodeD> side0, side1;
      for (NodeId v = 0; v < n; ++v) {
        if (locked[v]) continue;
        (part[v] == 0 ? side0 : side1).push_back(NodeD{v, d[v]});
      }
      auto by_d = [](const NodeD& x, const NodeD& y) {
        if (x.d != y.d) return x.d > y.d;
        return x.node < y.node;
      };
      std::sort(side0.begin(), side0.end(), by_d);
      std::sort(side1.begin(), side1.end(), by_d);
      if (work != nullptr) {
        const auto total = static_cast<double>(side0.size() + side1.size());
        *work += total * std::log2(total + 2.0);
      }

      // Strategy dispatch. The chunked-vs-heap choice compares the
      // unlocked-node count against the config threshold — a pure function
      // of (graph, part, config) — so every width takes the same branch and
      // charges the same work.
      BestPair best;
      if (!config.diagonal_scanning) {
        best = naive_best_pair(g, side0, side1, work, pool);
      } else if (!side0.empty() && !side1.empty() &&
                 side0.size() + side1.size() >= config.pair_chunk_min_nodes) {
        best = chunked_best_pair(g, side0, side1, work, pooled_work, pool);
      } else {
        best = diagonal_scan_best_pair(g, side0, side1, work);
      }
      if (!best.found) break;

      // Perform the swap.
      part[best.a] = 1;
      part[best.b] = 0;
      locked[best.a] = true;
      locked[best.b] = true;
      running += best.gain;
      swaps.push_back(SwapRecord{best.a, best.b, best.gain});

      // Update D values of unlocked neighbors.
      for (const Edge& e : g.neighbors(best.a)) {
        if (locked[e.to]) continue;
        // a left side 0: side-0 neighbors gained an external edge (+2w),
        // side-1 neighbors gained an internal edge (−2w).
        d[e.to] += part[e.to] == 0 ? 2 * e.weight : -2 * e.weight;
        if (work != nullptr) *work += 1.0;
      }
      for (const Edge& e : g.neighbors(best.b)) {
        if (locked[e.to]) continue;
        d[e.to] += part[e.to] == 1 ? 2 * e.weight : -2 * e.weight;
        if (work != nullptr) *work += 1.0;
      }

      if (running > best_sum) {
        best_sum = running;
        best_index = swaps.size();
        idle = 0;
      } else if (++idle >= config.idle_swap_limit) {
        break;
      }
    }

    // Roll back swaps beyond the maximal partial sum.
    for (std::size_t s = swaps.size(); s > best_index; --s) {
      const SwapRecord& rec = swaps[s - 1];
      part[rec.a] = 0;
      part[rec.b] = 1;
    }
    if (best_sum <= 0) break;  // no improvement: refinement converged
    cut -= best_sum;
  }
  FOCUS_ASSERT(cut == edge_cut(g, part), "tracked cut diverged from graph");
  return cut;
}

}  // namespace focus::partition
