#include "partition/kway.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/indexed_heap.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Edge;
using graph::Graph;

namespace {

struct MoveRecord {
  NodeId node;
  PartId from;
  PartId to;
};

/// Below this the seeding sweep is cheaper than waking the pool.
constexpr std::size_t kParallelKwayMinNodes = 512;

}  // namespace

Weight kway_kl_refine(const Graph& g, std::vector<PartId>& part, PartId parts,
                      const KwayConfig& config, double* work,
                      ThreadPool* pool) {
  const std::size_t n = g.node_count();
  FOCUS_CHECK(part.size() == n, "partition size mismatch");
  FOCUS_CHECK(parts >= 1, "parts must be positive");
  FOCUS_CHECK(is_complete(part, parts), "k-way refine needs a complete partition");
  if (parts == 1 || n == 0) return 0;

  Weight cut = edge_cut(g, part, pool);
  if (work != nullptr) *work += static_cast<double>(g.edge_count());

  const bool pooled =
      pool != nullptr && pool->thread_count() > 1 && n >= kParallelKwayMinNodes;

  std::vector<Weight> part_weight = part_node_weights(g, part, parts);

  // External cost and gain(v) = E(v) − I(v) under the current partition.
  // Work-free: callers charge g.degree(v) themselves so the parallel scoring
  // pass can reuse these without perturbing the work sequence.
  auto external_of = [&](NodeId v) {
    Weight e = 0;
    for (const Edge& edge : g.neighbors(v)) {
      if (part[edge.to] != part[v]) e += edge.weight;
    }
    return e;
  };
  auto gain_of = [&](NodeId v) {
    Weight e = 0, i = 0;
    for (const Edge& edge : g.neighbors(v)) {
      if (part[edge.to] == part[v]) {
        i += edge.weight;
      } else {
        e += edge.weight;
      }
    }
    return e - i;
  };

  std::vector<bool> locked(n);
  std::unordered_map<PartId, Weight> to_part;
  std::vector<Weight> external_score;
  std::vector<Weight> gain_score;
  if (pooled) {
    external_score.resize(n);
    gain_score.resize(n);
  }

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    IndexedMaxHeap<Weight> queue(n);
    std::fill(locked.begin(), locked.end(), false);
    if (pooled) {
      // Parallel scoring into per-node slots, then a sequential commit loop
      // that seeds the heap and charges work in node order — the same heap
      // state and work sequence as the serial branch below.
      pool->parallel_for(n, 512, [&](std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) {
          const auto node = static_cast<NodeId>(v);
          external_score[v] = external_of(node);
          gain_score[v] = external_score[v] > 0 ? gain_of(node) : 0;
        }
      });
      for (NodeId v = 0; v < n; ++v) {
        if (work != nullptr) *work += static_cast<double>(g.degree(v));
        if (external_score[v] > 0) {
          if (work != nullptr) *work += static_cast<double>(g.degree(v));
          queue.push(v, gain_score[v]);
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        const Weight external = external_of(v);
        if (work != nullptr) *work += static_cast<double>(g.degree(v));
        if (external > 0) {
          if (work != nullptr) *work += static_cast<double>(g.degree(v));
          queue.push(v, gain_of(v));
        }
      }
    }

    std::vector<MoveRecord> moves;
    Weight running = 0;
    Weight best_sum = 0;
    std::size_t best_index = 0;
    std::size_t idle = 0;

    while (!queue.empty()) {
      const NodeId v = queue.pop();
      if (locked[v]) continue;

      // External cost toward each adjacent partition.
      to_part.clear();
      Weight internal = 0;
      const PartId from = part[v];
      for (const Edge& edge : g.neighbors(v)) {
        if (part[edge.to] == from) {
          internal += edge.weight;
        } else {
          to_part[part[edge.to]] += edge.weight;
        }
      }
      if (work != nullptr) *work += static_cast<double>(g.degree(v));

      // Best admissible target (max external cost; ties to lower part id).
      PartId target = kNoPart;
      Weight target_cost = 0;
      for (PartId p = 0; p < parts; ++p) {
        const auto it = to_part.find(p);
        if (it == to_part.end()) continue;
        if (static_cast<double>(
                part_weight[static_cast<std::size_t>(p)]) >=
            config.balance_bound *
                static_cast<double>(
                    part_weight[static_cast<std::size_t>(from)])) {
          continue;
        }
        if (target == kNoPart || it->second > target_cost) {
          target = p;
          target_cost = it->second;
        }
      }
      if (target == kNoPart) continue;

      // Execute the move.
      part[v] = target;
      locked[v] = true;
      part_weight[static_cast<std::size_t>(from)] -= g.node_weight(v);
      part_weight[static_cast<std::size_t>(target)] += g.node_weight(v);
      const Weight realized = target_cost - internal;  // edge-cut reduction
      running += realized;
      moves.push_back(MoveRecord{v, from, target});

      // Refresh unlocked neighbors' gains (they may enter or leave the
      // boundary).
      for (const Edge& edge : g.neighbors(v)) {
        if (locked[edge.to]) continue;
        const Weight external = external_of(edge.to);
        if (work != nullptr) {
          *work += static_cast<double>(g.degree(edge.to));
        }
        if (external > 0) {
          if (work != nullptr) {
            *work += static_cast<double>(g.degree(edge.to));
          }
          queue.push_or_update(edge.to, gain_of(edge.to));
        } else if (queue.contains(edge.to)) {
          queue.erase(edge.to);
        }
      }

      if (running > best_sum) {
        best_sum = running;
        best_index = moves.size();
        idle = 0;
      } else if (++idle >= config.idle_move_limit) {
        break;
      }
    }

    // Undo moves beyond the maximal partial sum.
    for (std::size_t m = moves.size(); m > best_index; --m) {
      const MoveRecord& rec = moves[m - 1];
      part[rec.node] = rec.from;
      part_weight[static_cast<std::size_t>(rec.to)] -= g.node_weight(rec.node);
      part_weight[static_cast<std::size_t>(rec.from)] += g.node_weight(rec.node);
    }
    if (best_sum <= 0) break;
    cut -= best_sum;
  }
  FOCUS_ASSERT(cut == edge_cut(g, part, pool), "tracked k-way cut diverged");
  return cut;
}

}  // namespace focus::partition
