#include "partition/kway.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/indexed_heap.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Edge;
using graph::Graph;

namespace {

struct MoveRecord {
  NodeId node;
  PartId from;
  PartId to;
};

}  // namespace

Weight kway_kl_refine(const Graph& g, std::vector<PartId>& part, PartId parts,
                      const KwayConfig& config, double* work) {
  const std::size_t n = g.node_count();
  FOCUS_CHECK(part.size() == n, "partition size mismatch");
  FOCUS_CHECK(parts >= 1, "parts must be positive");
  FOCUS_CHECK(is_complete(part, parts), "k-way refine needs a complete partition");
  if (parts == 1 || n == 0) return 0;

  Weight cut = edge_cut(g, part);
  if (work != nullptr) *work += static_cast<double>(g.edge_count());

  std::vector<Weight> part_weight = part_node_weights(g, part, parts);

  // gain(v) = E(v) − I(v) under the current partition.
  auto gain_of = [&](NodeId v) {
    Weight e = 0, i = 0;
    for (const Edge& edge : g.neighbors(v)) {
      if (part[edge.to] == part[v]) {
        i += edge.weight;
      } else {
        e += edge.weight;
      }
    }
    if (work != nullptr) *work += static_cast<double>(g.degree(v));
    return e - i;
  };

  std::vector<bool> locked(n);
  std::unordered_map<PartId, Weight> to_part;

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    IndexedMaxHeap<Weight> queue(n);
    std::fill(locked.begin(), locked.end(), false);
    for (NodeId v = 0; v < n; ++v) {
      Weight external = 0;
      for (const Edge& edge : g.neighbors(v)) {
        if (part[edge.to] != part[v]) external += edge.weight;
      }
      if (work != nullptr) *work += static_cast<double>(g.degree(v));
      if (external > 0) queue.push(v, gain_of(v));
    }

    std::vector<MoveRecord> moves;
    Weight running = 0;
    Weight best_sum = 0;
    std::size_t best_index = 0;
    std::size_t idle = 0;

    while (!queue.empty()) {
      const NodeId v = queue.pop();
      if (locked[v]) continue;

      // External cost toward each adjacent partition.
      to_part.clear();
      Weight internal = 0;
      const PartId from = part[v];
      for (const Edge& edge : g.neighbors(v)) {
        if (part[edge.to] == from) {
          internal += edge.weight;
        } else {
          to_part[part[edge.to]] += edge.weight;
        }
      }
      if (work != nullptr) *work += static_cast<double>(g.degree(v));

      // Best admissible target (max external cost; ties to lower part id).
      PartId target = kNoPart;
      Weight target_cost = 0;
      for (PartId p = 0; p < parts; ++p) {
        const auto it = to_part.find(p);
        if (it == to_part.end()) continue;
        if (static_cast<double>(
                part_weight[static_cast<std::size_t>(p)]) >=
            config.balance_bound *
                static_cast<double>(
                    part_weight[static_cast<std::size_t>(from)])) {
          continue;
        }
        if (target == kNoPart || it->second > target_cost) {
          target = p;
          target_cost = it->second;
        }
      }
      if (target == kNoPart) continue;

      // Execute the move.
      part[v] = target;
      locked[v] = true;
      part_weight[static_cast<std::size_t>(from)] -= g.node_weight(v);
      part_weight[static_cast<std::size_t>(target)] += g.node_weight(v);
      const Weight realized = target_cost - internal;  // edge-cut reduction
      running += realized;
      moves.push_back(MoveRecord{v, from, target});

      // Refresh unlocked neighbors' gains (they may enter or leave the
      // boundary).
      for (const Edge& edge : g.neighbors(v)) {
        if (locked[edge.to]) continue;
        Weight external = 0;
        for (const Edge& e2 : g.neighbors(edge.to)) {
          if (part[e2.to] != part[edge.to]) external += e2.weight;
        }
        if (work != nullptr) {
          *work += static_cast<double>(g.degree(edge.to));
        }
        if (external > 0) {
          queue.push_or_update(edge.to, gain_of(edge.to));
        } else if (queue.contains(edge.to)) {
          queue.erase(edge.to);
        }
      }

      if (running > best_sum) {
        best_sum = running;
        best_index = moves.size();
        idle = 0;
      } else if (++idle >= config.idle_move_limit) {
        break;
      }
    }

    // Undo moves beyond the maximal partial sum.
    for (std::size_t m = moves.size(); m > best_index; --m) {
      const MoveRecord& rec = moves[m - 1];
      part[rec.node] = rec.from;
      part_weight[static_cast<std::size_t>(rec.to)] -= g.node_weight(rec.node);
      part_weight[static_cast<std::size_t>(rec.from)] += g.node_weight(rec.node);
    }
    if (best_sum <= 0) break;
    cut -= best_sum;
  }
  FOCUS_ASSERT(cut == edge_cut(g, part), "tracked k-way cut diverged");
  return cut;
}

}  // namespace focus::partition
