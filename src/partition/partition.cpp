#include "partition/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace focus::partition {

namespace {

/// Below this, chunked scoring costs more than it saves.
constexpr std::size_t kParallelMetricMinNodes = 2048;
constexpr std::size_t kMetricGrain = 1024;

}  // namespace

Weight edge_cut(const Graph& g, const std::vector<PartId>& part,
                ThreadPool* pool) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const std::size_t n = g.node_count();
  const auto chunk_cut = [&](std::size_t begin, std::size_t end) {
    Weight cut = 0;
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      for (const graph::Edge& e : g.neighbors(v)) {
        if (e.to > v && part[e.to] != part[v]) cut += e.weight;
      }
    }
    return cut;
  };
  if (pool == nullptr || pool->thread_count() <= 1 ||
      n < kParallelMetricMinNodes) {
    return chunk_cut(0, n);
  }
  const std::size_t chunks = (n + kMetricGrain - 1) / kMetricGrain;
  std::vector<Weight> partial(chunks, 0);
  pool->parallel_for(n, kMetricGrain, [&](std::size_t b, std::size_t e) {
    partial[b / kMetricGrain] = chunk_cut(b, e);
  });
  Weight cut = 0;
  for (const Weight w : partial) cut += w;
  return cut;
}

std::vector<Weight> part_node_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  std::vector<Weight> w(static_cast<std::size_t>(parts), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    FOCUS_ASSERT(part[v] >= 0 && part[v] < parts, "node with invalid part");
    w[static_cast<std::size_t>(part[v])] += g.node_weight(v);
  }
  return w;
}

std::vector<Weight> part_edge_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  std::vector<Weight> w(static_cast<std::size_t>(parts), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const graph::Edge& e : g.neighbors(v)) {
      w[static_cast<std::size_t>(part[v])] += e.weight;
    }
  }
  return w;
}

double node_balance(const Graph& g, const std::vector<PartId>& part,
                    PartId parts) {
  const auto weights = part_node_weights(g, part, parts);
  const Weight total = g.total_node_weight();
  if (total == 0) return 1.0;
  const Weight max_w = *std::max_element(weights.begin(), weights.end());
  return static_cast<double>(max_w) * static_cast<double>(parts) /
         static_cast<double>(total);
}

bool is_complete(const std::vector<PartId>& part, PartId parts) {
  for (const PartId p : part) {
    if (p < 0 || p >= parts) return false;
  }
  return true;
}

}  // namespace focus::partition
