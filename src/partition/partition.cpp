#include "partition/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace focus::partition {

Weight edge_cut(const Graph& g, const std::vector<PartId>& part) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  Weight cut = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const graph::Edge& e : g.neighbors(v)) {
      if (e.to > v && part[e.to] != part[v]) cut += e.weight;
    }
  }
  return cut;
}

std::vector<Weight> part_node_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  std::vector<Weight> w(static_cast<std::size_t>(parts), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    FOCUS_ASSERT(part[v] >= 0 && part[v] < parts, "node with invalid part");
    w[static_cast<std::size_t>(part[v])] += g.node_weight(v);
  }
  return w;
}

std::vector<Weight> part_edge_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  std::vector<Weight> w(static_cast<std::size_t>(parts), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (const graph::Edge& e : g.neighbors(v)) {
      w[static_cast<std::size_t>(part[v])] += e.weight;
    }
  }
  return w;
}

double node_balance(const Graph& g, const std::vector<PartId>& part,
                    PartId parts) {
  const auto weights = part_node_weights(g, part, parts);
  const Weight total = g.total_node_weight();
  if (total == 0) return 1.0;
  const Weight max_w = *std::max_element(weights.begin(), weights.end());
  return static_cast<double>(max_w) * static_cast<double>(parts) /
         static_cast<double>(total);
}

bool is_complete(const std::vector<PartId>& part, PartId parts) {
  for (const PartId p : part) {
    if (p < 0 || p >= parts) return false;
  }
  return true;
}

}  // namespace focus::partition
