// Kernighan–Lin bisection refinement (paper §IV-B).
//
// Each pass repeatedly selects the unlocked pair (vz ∈ P1, vy ∈ P2) with the
// greatest swap gain g = D(vz) + D(vy) − 2·w(vz,vy), swaps and locks it, and
// updates neighbors' D values. Pair selection follows the paper's
// O(n² log n) scheme: nodes of each side are kept sorted by D value and pairs
// are enumerated in decreasing D-sum order (diagonal scanning, Dutt [18]);
// the scan stops once the current D-sum cannot beat the best gain seen.
// Two cutoffs end a pass: all pairs locked, or the maximal partial gain sum
// has not improved for `idle_swap_limit` (50) swaps. Swaps after the maximal
// partial sum are rolled back; passes repeat until a pass yields no gain.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

struct KlConfig {
  /// Pass ends after this many swaps without improving the max partial sum.
  std::size_t idle_swap_limit = 50;
  /// Hard cap on refinement passes.
  std::size_t max_passes = 8;
  /// Use the sorted-array + diagonal-scanning pair search (the paper's
  /// O(n² log n) scheme). When false, falls back to the naive O(n³)-style
  /// full pair scan per swap — kept for the ablation benchmark.
  bool diagonal_scanning = true;
};

/// Refines a bisection (part ids 0/1) in place; returns the final edge cut.
/// `work` accumulates work units for virtual-time accounting.
///
/// With a pool, the per-pass D-value initialization (the O(E) scoring sweep)
/// runs as a parallel scoring pass into per-node slots; the swap loop itself
/// stays sequential. D values are pure functions of (graph, part), so the
/// refinement — and the accumulated `work` — are bit-identical at every pool
/// width, including pool == nullptr.
Weight kl_bisection_refine(const graph::Graph& g, std::vector<PartId>& part,
                           const KlConfig& config = {},
                           double* work = nullptr,
                           ThreadPool* pool = nullptr);

}  // namespace focus::partition
