// Kernighan–Lin bisection refinement (paper §IV-B).
//
// Each pass repeatedly selects the unlocked pair (vz ∈ P1, vy ∈ P2) with the
// greatest swap gain g = D(vz) + D(vy) − 2·w(vz,vy), swaps and locks it, and
// updates neighbors' D values. Two cutoffs end a pass: all pairs locked, or
// the maximal partial gain sum has not improved for `idle_swap_limit` (50)
// swaps. Swaps after the maximal partial sum are rolled back; passes repeat
// until a pass yields no gain.
//
// The selected pair is the unique maximum of a total order: largest gain,
// ties broken toward the larger D-sum, then the earlier position (i, j) in
// the diagonal enumeration of the side arrays (each sorted by D descending,
// node id ascending — itself a total order). Tie-breaking in enumeration
// order rather than by raw node id is deliberate: every zero-weight pair
// has gain == D-sum, so gain ties pool on equal-D-sum plateaus, and a
// node-id tie-break would force the scans to enumerate whole plateaus
// (~5x total KL work on the Fig. 4 sets) instead of cutting off. Every
// pair-search strategy below computes the same argmax, so they are
// interchangeable swap for swap:
//  * diagonal scanning (the paper's O(n² log n) scheme, Dutt [18]): both
//    sides sorted by D descending, pairs enumerated in decreasing D-sum
//    order through a heap; the scan stops once the next D-sum can no longer
//    beat the best gain seen (gain ≤ D-sum because edge weights are
//    non-negative, and a later pair that merely ties loses the total order).
//  * chunked bounded scan (`pair_chunk_min_nodes`): side-0 rows are split
//    into fixed chunks; each chunk scans side-1 in D order with the same
//    cannot-win cutoff against a chunk-local best seeded from the
//    top D-sum pair, and the per-chunk winners are reduced in chunk order.
//    Chunks run on the ThreadPool when one is supplied — this is the
//    per-swap hot loop of large refinement levels — and inline, in chunk
//    order, otherwise; either way the result and the work accounting are
//    byte-identical because the strategy choice and the chunk decomposition
//    depend only on the unlocked-node count, never the pool width.
//  * naive all-pairs (O(n³)-style, kept for the ablation benchmark), also
//    chunk-parallel on a pool.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

struct KlConfig {
  /// Pass ends after this many swaps without improving the max partial sum.
  std::size_t idle_swap_limit = 50;
  /// Hard cap on refinement passes.
  std::size_t max_passes = 8;
  /// Use the sorted-array + diagonal-scanning pair search (the paper's
  /// O(n² log n) scheme). When false, falls back to the naive O(n³)-style
  /// full pair scan per swap — kept for the ablation benchmark.
  bool diagonal_scanning = true;
  /// Unlocked-node count (both sides together) at or above which the
  /// diagonal pair search switches from the serial heap scan to the chunked
  /// bounded scan, whose chunks run on the pool. The threshold compares
  /// against problem size only — never the pool width — so the strategy
  /// choice, the selected pairs, and the work accounting are identical at
  /// every width. Chunk-local pruning is weaker than the heap's global
  /// bound (each chunk re-scans side 1 until its own cutoff fires), so
  /// chunking trades more total work for divisible work; the default keeps
  /// the heap scan on small and mid-size instances — including the Fig. 4
  /// hybrid graph sets, whose work profile it would otherwise skew — and
  /// chunks only where the extra evaluations amortize across workers.
  /// 0 forces chunking everywhere (used by tests and the ablation bench);
  /// SIZE_MAX restores the pure heap scan.
  std::size_t pair_chunk_min_nodes = 4096;
};

/// Refines a bisection (part ids 0/1) in place; returns the final edge cut.
/// `work` accumulates work units for virtual-time accounting.
///
/// With a pool, the per-pass D-value initialization (the O(E) scoring sweep)
/// runs as a parallel scoring pass into per-node slots and the per-swap pair
/// search runs chunk-parallel once the unlocked-node count reaches
/// `pair_chunk_min_nodes`; the swap commits stay sequential. D values are
/// pure functions of (graph, part) and every reduction merges in chunk
/// order, so the refinement — and the accumulated `work` — are bit-identical
/// at every pool width, including pool == nullptr.
///
/// `pooled_work` (if non-null) additionally accumulates the subset of `work`
/// spent in pool-parallelizable loops (the D-value sweeps of instances with
/// >= 512 nodes and the chunked pair-search chunks). It is a pure function
/// of (graph, part, config) — the same at every width — and feeds the Fig. 4
/// bench's intra-bisection speedup model.
Weight kl_bisection_refine(const graph::Graph& g, std::vector<PartId>& part,
                           const KlConfig& config = {},
                           double* work = nullptr,
                           ThreadPool* pool = nullptr,
                           double* pooled_work = nullptr);

}  // namespace focus::partition
