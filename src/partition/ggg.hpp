// Greedy graph growing bisection (paper §IV-A, after Karypis & Kumar with
// the paper's customizations).
//
// A random seed node starts partition P1; the frontier ("horizon") is kept in
// a gain priority queue where gain(v) = (external weight toward the growing
// partition) − (internal weight toward the rest). The highest-gain node is
// absorbed and its neighbors' gains updated. Growth alternates sides: if a
// side's incident edge weight exceeds 1.03× the other's, it stops and a new
// seed starts the other side. Growing ends when either side reaches half the
// graph's node weight; leftover nodes go to the lighter side.
//
// Serial by design: every absorption changes the frontier gains the next
// absorption reads, so the growth loop is a sequential dependence chain with
// no scoring pass worth pooling. It only ever runs on the coarsest graph of
// a region (a few hundred nodes), so the parallel partitioner (mlpart.hpp)
// parallelizes *around* it instead: sibling regions overlap via fork_join,
// and within one region `PartitionerConfig::trials` independently seeded
// GGG+KL growths run concurrently on the pool (each trial's Rng derives
// purely from (seed, region, trial); the best coarsest cut wins with ties
// broken toward the smaller trial index).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

struct GggConfig {
  /// Edge-weight imbalance bound between the growing sides.
  double edge_balance_bound = 1.03;
};

/// Produces an initial bisection (part ids 0/1) of g. Deterministic given
/// the rng state. `work` (if non-null) accumulates work units.
std::vector<PartId> greedy_graph_growing(const graph::Graph& g, Rng& rng,
                                         const GggConfig& config = {},
                                         double* work = nullptr);

}  // namespace focus::partition
