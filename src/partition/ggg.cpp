#include "partition/ggg.hpp"

#include <array>

#include "common/error.hpp"
#include "common/indexed_heap.hpp"

namespace focus::partition {

using graph::Edge;
using graph::Graph;

std::vector<PartId> greedy_graph_growing(const Graph& g, Rng& rng,
                                         const GggConfig& config,
                                         double* work) {
  const std::size_t n = g.node_count();
  std::vector<PartId> assign(n, kNoPart);
  if (n == 0) return assign;

  const Weight total_nw = g.total_node_weight();
  const double half_nw = 0.5 * static_cast<double>(total_nw);

  // gain[s][v] = 2 * (weight of v's edges into side s) - weighted_degree(v).
  // Maintained incrementally; the heaps hold the current horizons.
  std::array<IndexedMaxHeap<Weight>, 2> horizon{IndexedMaxHeap<Weight>(n),
                                                IndexedMaxHeap<Weight>(n)};
  std::array<std::vector<Weight>, 2> side_weight{std::vector<Weight>(n, 0),
                                                 std::vector<Weight>(n, 0)};
  std::vector<Weight> wdeg(n);
  for (NodeId v = 0; v < n; ++v) wdeg[v] = g.weighted_degree(v);

  std::array<Weight, 2> nw{0, 0};
  std::array<Weight, 2> ew{0, 0};
  std::size_t assigned = 0;

  // Deterministic random probing for unassigned seeds.
  auto pick_seed = [&]() -> NodeId {
    if (assigned == n) return kInvalidNode;
    for (int attempts = 0; attempts < 32; ++attempts) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (assign[v] == kNoPart) return v;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (assign[v] == kNoPart) return v;
    }
    return kInvalidNode;
  };

  auto place = [&](NodeId v, int side) {
    FOCUS_ASSERT(assign[v] == kNoPart, "node placed twice");
    assign[v] = static_cast<PartId>(side);
    ++assigned;
    nw[static_cast<std::size_t>(side)] += g.node_weight(v);
    ew[static_cast<std::size_t>(side)] += wdeg[v];
    for (int s = 0; s < 2; ++s) {
      if (horizon[static_cast<std::size_t>(s)].contains(v)) {
        horizon[static_cast<std::size_t>(s)].erase(v);
      }
    }
    for (const Edge& e : g.neighbors(v)) {
      if (work != nullptr) *work += 1.0;
      if (assign[e.to] != kNoPart) continue;
      side_weight[static_cast<std::size_t>(side)][e.to] += e.weight;
      const Weight gain =
          2 * side_weight[static_cast<std::size_t>(side)][e.to] - wdeg[e.to];
      horizon[static_cast<std::size_t>(side)].push_or_update(e.to, gain);
    }
  };

  int active = 0;
  {
    const NodeId seed = pick_seed();
    FOCUS_ASSERT(seed != kInvalidNode, "no seed in non-empty graph");
    place(seed, active);
  }

  while (assigned < n &&
         static_cast<double>(nw[0]) < half_nw &&
         static_cast<double>(nw[1]) < half_nw) {
    const auto a = static_cast<std::size_t>(active);
    if (horizon[a].empty()) {
      const NodeId seed = pick_seed();
      if (seed == kInvalidNode) break;
      place(seed, active);
    } else {
      const NodeId v = horizon[a].pop();
      if (work != nullptr) *work += 1.0;
      place(v, active);
    }
    // Edge-weight balance: a side that gets too heavy yields to the other.
    const auto b = 1 - a;
    if (static_cast<double>(ew[a]) >
        config.edge_balance_bound * static_cast<double>(ew[b])) {
      active = static_cast<int>(b);
    }
  }

  // Remaining nodes go to the side with less node weight.
  const int light = nw[0] <= nw[1] ? 0 : 1;
  for (NodeId v = 0; v < n; ++v) {
    if (assign[v] == kNoPart) {
      assign[v] = static_cast<PartId>(light);
      nw[static_cast<std::size_t>(light)] += g.node_weight(v);
    }
  }
  return assign;
}

}  // namespace focus::partition
