#include "partition/mlpart.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Graph;
using graph::GraphBuilder;
using graph::GraphHierarchy;

namespace {

/// Below these, the pooled variants of the projection / lift loops cost more
/// than they save (same rationale as coarsen's kParallelHemMinNodes).
constexpr std::size_t kParallelProjectMinNodes = 512;
constexpr std::size_t kParallelLiftMinNodes = 512;

// Induced subgraph over `region`; local ids follow region order.
Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& region,
                       double* work) {
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    local.emplace(region[i], i);
  }
  GraphBuilder builder(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    builder.set_node_weight(i, g.node_weight(region[i]));
    for (const graph::Edge& e : g.neighbors(region[i])) {
      if (work != nullptr) *work += 1.0;
      if (e.to <= region[i]) continue;  // each edge once
      const auto it = local.find(e.to);
      if (it == local.end()) continue;
      builder.add_edge(i, it->second, e.weight);
    }
  }
  return builder.build();
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  return splitmix64(s);
}

}  // namespace

std::vector<std::uint8_t> bisect_region(const Graph& g,
                                        const std::vector<NodeId>& region,
                                        const PartitionerConfig& config,
                                        std::uint64_t region_seed,
                                        Weight region_weight, double* work,
                                        ThreadPool* pool,
                                        BisectRegionAccounting* acct) {
  std::vector<std::uint8_t> side(region.size(), 0);
  if (region.size() < 2) return side;

  const Graph sub = induced_subgraph(g, region, work);
  // The caller accounts node-weight totals once, at the split point; the
  // induced subgraph copies node weights verbatim, so they must agree.
  FOCUS_ASSERT(sub.total_node_weight() == region_weight,
               "region weight drifted from induced subgraph");

  // Coarsen the region. Coarse-node weight is capped (Karypis & Kumar's
  // maxvwgt) so the coarsest graph always admits a balanced bisection even
  // when the input nodes (hybrid read clusters) have very uneven weights.
  graph::CoarsenConfig cc = config.coarsen;
  cc.seed = region_seed;
  cc.max_node_weight = std::max<Weight>(
      1, 3 * region_weight /
             (2 * static_cast<Weight>(std::max<std::size_t>(cc.min_nodes, 1))));
  const GraphHierarchy mini = graph::build_multilevel(sub, cc);
  if (work != nullptr) {
    for (const Graph& level : mini.levels) {
      *work += static_cast<double>(level.edge_count());
    }
  }

  // Multi-trial initial bisection on the coarsest graph (Karypis & Kumar:
  // grow several randomly seeded bisections, keep the best). Trial t draws
  // its Rng purely from (seed, region, t); the winner is the total-order
  // argmin of (coarsest cut, trial), so the choice is independent of
  // evaluation order. Trials run concurrently on the pool — each charges a
  // private work slot, merged in trial order — which turns the serial root
  // bisection into pool-wide work. trials == 1 keeps the original direct
  // charging so the single-trial accounting stays bit-identical to the
  // pre-trials partitioner.
  double* pooled_work = acct != nullptr ? &acct->pooled_work : nullptr;
  const std::size_t trials = std::max<unsigned>(config.trials, 1);
  std::vector<PartId> part;
  if (trials == 1) {
    Rng rng(mix_seed(region_seed, 0x600d, 0x5eed));
    part = greedy_graph_growing(mini.coarsest(), rng, config.ggg, work);
    kl_bisection_refine(mini.coarsest(), part, config.kl, work, pool,
                        pooled_work);
  } else {
    struct Trial {
      std::vector<PartId> part;
      Weight cut = 0;
      double work = 0.0;
    };
    std::vector<Trial> runs(trials);
    const auto run_trial = [&](std::size_t t) {
      // Trial KL instances stay single-threaded: the trials themselves are
      // the parallelism here, and their pooled-eligible work is already
      // covered by the per-trial slots (no double counting in acct).
      Rng rng(mix_seed(region_seed, 0x600d, 0x5eed + t));
      Trial& r = runs[t];
      r.part = greedy_graph_growing(mini.coarsest(), rng, config.ggg, &r.work);
      r.cut = kl_bisection_refine(mini.coarsest(), r.part, config.kl, &r.work,
                                  nullptr);
    };
    if (pool != nullptr && pool->thread_count() > 1) {
      pool->parallel_for(trials, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) run_trial(t);
      });
    } else {
      for (std::size_t t = 0; t < trials; ++t) run_trial(t);
    }
    std::size_t winner = 0;
    for (std::size_t t = 1; t < trials; ++t) {
      if (runs[t].cut < runs[winner].cut) winner = t;  // ties keep earliest
    }
    if (acct != nullptr) acct->trial_work.resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      if (work != nullptr) *work += runs[t].work;
      if (acct != nullptr) acct->trial_work[t] = runs[t].work;
    }
    part = std::move(runs[winner].part);
  }

  // Project and refine down to the region's finest level. Each fine node
  // reads only its own parent's label, so the projection is a parallel
  // scoring pass with disjoint writes.
  for (std::size_t l = mini.depth() - 1; l-- > 0;) {
    const auto& parent = mini.parent[l];
    std::vector<PartId> fine(mini.levels[l].node_count());
    if (pool != nullptr && pool->thread_count() > 1 &&
        fine.size() >= kParallelProjectMinNodes) {
      pool->parallel_for(fine.size(), 2048, [&](std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) fine[v] = part[parent[v]];
      });
    } else {
      for (NodeId v = 0; v < fine.size(); ++v) {
        fine[v] = part[parent[v]];
      }
    }
    part = std::move(fine);
    kl_bisection_refine(mini.levels[l], part, config.kl, work, pool,
                        pooled_work);
  }

  for (std::size_t i = 0; i < region.size(); ++i) {
    side[i] = static_cast<std::uint8_t>(part[i]);
  }
  return side;
}

std::vector<std::vector<PartId>> lift_partition(const GraphHierarchy& h,
                                                const std::vector<PartId>& finest,
                                                PartId parts, ThreadPool* pool) {
  const std::size_t depth = h.depth();
  std::vector<std::vector<PartId>> levels(depth);
  levels[0] = finest;
  for (std::size_t l = 1; l < depth; ++l) {
    const std::size_t n = h.levels[l].node_count();
    // Majority node-weight vote of the children's parts. The tally scatters
    // into per-parent buckets and stays serial; the winner selection reads
    // one bucket and writes one slot per coarse node, so it parallelizes.
    std::vector<std::unordered_map<PartId, Weight>> votes(n);
    const Graph& fine = h.levels[l - 1];
    for (NodeId v = 0; v < fine.node_count(); ++v) {
      votes[h.parent[l - 1][v]][levels[l - 1][v]] += fine.node_weight(v);
    }
    levels[l].assign(n, kNoPart);
    const auto pick_winners = [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        FOCUS_ASSERT(!votes[v].empty(), "coarse node with no children");
        PartId best = kNoPart;
        Weight best_weight = -1;
        for (PartId p = 0; p < parts; ++p) {
          const auto it = votes[v].find(p);
          if (it == votes[v].end()) continue;
          if (it->second > best_weight) {
            best = p;
            best_weight = it->second;
          }
        }
        levels[l][v] = best;
      }
    };
    if (pool != nullptr && pool->thread_count() > 1 &&
        n >= kParallelLiftMinNodes) {
      pool->parallel_for(n, 512, [&](std::size_t b, std::size_t e) {
        pick_winners(b, e);
      });
    } else {
      pick_winners(0, n);
    }
  }
  return levels;
}

namespace {

// Wave-model recursive bisection, shared by the mpr driver: `run_step`
// executes all regions of one step and returns their side vectors. The
// serial/pooled driver walks the same tree recursively (bisect_subtree);
// both orders visit identical regions with identical seeds — see the
// equivalence argument there — so all drivers produce identical partitions.
template <typename RunStep>
std::vector<PartId> recursive_bisection(const Graph& g, PartId k,
                                        RunStep&& run_step) {
  std::vector<PartId> part(g.node_count(), 0);
  PartId current_parts = 1;
  while (current_parts < k) {
    // Gather regions by current label; total their node weights here — the
    // split point — so bisect_region need not recompute them.
    std::vector<std::vector<NodeId>> regions(
        static_cast<std::size_t>(current_parts));
    std::vector<Weight> region_weights(
        static_cast<std::size_t>(current_parts), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      regions[static_cast<std::size_t>(part[v])].push_back(v);
      region_weights[static_cast<std::size_t>(part[v])] += g.node_weight(v);
    }
    const std::vector<std::vector<std::uint8_t>> sides =
        run_step(regions, region_weights, current_parts);
    FOCUS_ASSERT(sides.size() == regions.size(), "bisection step size mismatch");
    for (std::size_t r = 0; r < regions.size(); ++r) {
      FOCUS_ASSERT(sides[r].size() == regions[r].size(),
                   "bisection side vector mismatch");
      for (std::size_t i = 0; i < regions[r].size(); ++i) {
        if (sides[r][i] != 0) {
          part[regions[r][i]] =
              static_cast<PartId>(static_cast<PartId>(r) + current_parts);
        }
      }
    }
    current_parts *= 2;
  }
  return part;
}

void check_k(PartId k) {
  FOCUS_CHECK(k >= 1 && (k & (k - 1)) == 0,
              "partition count must be a power of two (recursive bisection)");
}

// Shared state of one recursion-tree walk (bisect_subtree).
struct BisectTreeCtx {
  const Graph* g;
  const PartitionerConfig* config;
  PartId k;
  std::vector<PartId>* part;                    // final labels; disjoint writes
  std::vector<std::vector<double>>* step_work;  // [step][label] work slots
  // [step][label] intra-bisection accounting slots (per-trial / pooled work).
  std::vector<std::vector<std::vector<double>>>* step_trial_work;
  std::vector<std::vector<double>>* step_pooled_work;
  ThreadPool* pool;                             // nullptr => serial
};

// Recursion-tree driver used by partition_hierarchy. Equivalence with the
// wave model above, by induction over steps:
//  * a node's wave label after step s equals the label its recursion-tree
//    region carries at depth s (the root starts at label 0; a side-1 node
//    gains `label + 2^s`, exactly the wave's relabeling `r + current_parts`
//    with r == label);
//  * the wave gathers region r by scanning nodes in ascending id, and the
//    recursion's splits preserve ascending order from an ascending root, so
//    region node lists are identical;
//  * seeds are mix_seed(seed, step, label) on both sides.
// Hence every bisect_region call sees identical inputs, and since sibling
// subtrees touch disjoint node sets and disjoint work slots, the two halves
// of each split can run concurrently (fork_join) without changing a byte.
void bisect_subtree(const BisectTreeCtx& ctx, std::vector<NodeId>& region,
                    Weight region_weight, std::size_t step, PartId label) {
  if ((static_cast<PartId>(1) << step) >= ctx.k) {
    for (const NodeId v : region) (*ctx.part)[v] = label;
    return;
  }
  double* work = &(*ctx.step_work)[step][static_cast<std::size_t>(label)];
  BisectRegionAccounting acct;
  const std::vector<std::uint8_t> side = bisect_region(
      *ctx.g, region, *ctx.config,
      mix_seed(ctx.config->seed, step, static_cast<std::uint64_t>(label)),
      region_weight, work, ctx.pool, &acct);
  (*ctx.step_trial_work)[step][static_cast<std::size_t>(label)] =
      std::move(acct.trial_work);
  (*ctx.step_pooled_work)[step][static_cast<std::size_t>(label)] =
      acct.pooled_work;

  // Split, totalling the child weights here so the children inherit their
  // node-weight accounting from the split point.
  std::vector<NodeId> child0, child1;
  child0.reserve(region.size());
  child1.reserve(region.size() / 2 + 1);
  Weight w0 = 0, w1 = 0;
  for (std::size_t i = 0; i < region.size(); ++i) {
    const NodeId v = region[i];
    if (side[i] != 0) {
      child1.push_back(v);
      w1 += ctx.g->node_weight(v);
    } else {
      child0.push_back(v);
      w0 += ctx.g->node_weight(v);
    }
  }
  FOCUS_ASSERT(w0 + w1 == region_weight, "split halves do not sum to region");
  region.clear();
  region.shrink_to_fit();  // drop the parent list before recursing

  const PartId label1 =
      static_cast<PartId>(label + (static_cast<PartId>(1) << step));
  if (ctx.pool != nullptr && ctx.pool->thread_count() > 1) {
    ctx.pool->fork_join(
        [&] { bisect_subtree(ctx, child0, w0, step + 1, label); },
        [&] { bisect_subtree(ctx, child1, w1, step + 1, label1); });
  } else {
    bisect_subtree(ctx, child0, w0, step + 1, label);
    bisect_subtree(ctx, child1, w1, step + 1, label1);
  }
}

}  // namespace

HierarchyPartitioning partition_hierarchy(const GraphHierarchy& h, PartId k,
                                          const PartitionerConfig& config) {
  check_k(k);
  const Graph& finest = h.finest();

  std::size_t steps = 0;
  while ((static_cast<PartId>(1) << steps) < k) ++steps;

  const unsigned threads = resolve_thread_count(config.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  HierarchyPartitioning result;
  result.parts = k;
  result.step_work.resize(steps);
  result.step_trial_work.resize(steps);
  result.step_pooled_work.resize(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t regions = static_cast<std::size_t>(1) << s;
    result.step_work[s].assign(regions, 0.0);
    result.step_trial_work[s].assign(regions, {});
    result.step_pooled_work[s].assign(regions, 0.0);
  }

  // Phase 1: recursive bisection over the recursion tree; sibling subtrees
  // run concurrently on the pool.
  std::vector<PartId> part(finest.node_count(), 0);
  {
    std::vector<NodeId> root(finest.node_count());
    std::iota(root.begin(), root.end(), NodeId{0});
    const BisectTreeCtx ctx{&finest,
                            &config,
                            k,
                            &part,
                            &result.step_work,
                            &result.step_trial_work,
                            &result.step_pooled_work,
                            pool};
    bisect_subtree(ctx, root, finest.total_node_weight(), 0, 0);
  }

  // Phase 2: lift to all hierarchy levels.
  result.levels = lift_partition(h, part, k, pool);

  // Phase 3: per-level global k-way refinement. Levels are independent
  // (disjoint part vectors, disjoint work slots), so they run concurrently;
  // each refinement also uses the pool internally for its scoring sweeps.
  result.kway_work.assign(h.depth(), 0.0);
  if (config.kway_refinement) {
    const auto refine_level = [&](std::size_t l) {
      kway_kl_refine(h.levels[l], result.levels[l], k, config.kway,
                     &result.kway_work[l], pool);
    };
    if (pool != nullptr && pool->thread_count() > 1 && h.depth() > 1) {
      pool->parallel_for(h.depth(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t l = b; l < e; ++l) refine_level(l);
      });
    } else {
      for (std::size_t l = 0; l < h.depth(); ++l) refine_level(l);
    }
  }

  result.finest_cut = edge_cut(finest, result.levels[0], pool);
  // Fixed-order reduction of the work grid: identical at every pool width.
  double total = 0.0;
  for (const auto& step : result.step_work) {
    for (const double w : step) total += w;
  }
  for (const double w : result.kway_work) total += w;
  result.work = total;
  return result;
}

ParallelPartitionResult partition_hierarchy_parallel(
    const GraphHierarchy& h, PartId k, const PartitionerConfig& config,
    int nranks, mpr::CostModel cost) {
  check_k(k);
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  const Graph& finest = h.finest();

  ParallelPartitionResult out;
  out.partitioning.parts = k;

  out.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        const int p = comm.size();
        const Rank me = comm.rank();

        // --- Phase 1: recursive bisection, regions round-robin over ranks.
        // Each rank's region bodies stay single-threaded (pool == nullptr):
        // rank-level concurrency is the quantity under measurement here, and
        // stacking a host pool under every virtual rank would oversubscribe
        // the host (same policy as CoarsenConfig.threads for HEM).
        std::uint64_t step_counter = 0;
        std::vector<PartId> part = recursive_bisection(
            finest, k,
            [&](const std::vector<std::vector<NodeId>>& regions,
                const std::vector<Weight>& region_weights, PartId) {
              std::vector<std::vector<std::uint8_t>> sides(regions.size());
              // Compute my regions.
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                double work = 0.0;
                sides[r] = bisect_region(
                    finest, regions[r], config,
                    mix_seed(config.seed, step_counter, r), region_weights[r],
                    &work, /*pool=*/nullptr);
                comm.charge(work);
              }
              // Exchange: everyone needs all side vectors before the next
              // step. Gather to rank 0, then broadcast the full set.
              mpr::Message local;
              std::uint32_t mine = 0;
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) == me) {
                  ++mine;
                }
              }
              local.pack(mine);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                local.pack(static_cast<std::uint32_t>(r));
                local.pack_vector(sides[r]);
              }
              auto gathered = comm.gather(std::move(local), 0);
              mpr::Message full;
              if (me == 0) {
                for (auto& msg : gathered) {
                  const auto count = msg.unpack<std::uint32_t>();
                  for (std::uint32_t i = 0; i < count; ++i) {
                    const auto r = msg.unpack<std::uint32_t>();
                    sides[r] = msg.unpack_vector<std::uint8_t>();
                  }
                  FOCUS_CHECK(msg.fully_consumed(),
                              "trailing bytes in gathered frame");
                }
                for (std::size_t r = 0; r < regions.size(); ++r) {
                  full.pack_vector(sides[r]);
                }
              }
              full = comm.broadcast(std::move(full), 0);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                sides[r] = full.unpack_vector<std::uint8_t>();
              }
              ++step_counter;
              return sides;
            });

        // --- Phase 2: lift to all levels (replicated; cheap).
        {
          double lift_work = 0.0;
          for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
            lift_work += static_cast<double>(h.levels[l].node_count());
          }
          comm.charge(lift_work);
        }
        auto levels = lift_partition(h, part, k);

        // --- Phase 3: per-level global k-way refinement, levels round-robin
        // over ranks; refined levels gathered at rank 0.
        if (config.kway_refinement) {
          for (std::size_t l = 0; l < h.depth(); ++l) {
            if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) {
              continue;
            }
            double work = 0.0;
            kway_kl_refine(h.levels[l], levels[l], k, config.kway, &work);
            comm.charge(work);
          }
        }
        mpr::Message local;
        std::uint32_t mine = 0;
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) == me) ++mine;
        }
        local.pack(mine);
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) continue;
          local.pack(static_cast<std::uint32_t>(l));
          local.pack_vector(levels[l]);
        }
        auto gathered = comm.gather(std::move(local), 0);
        if (me == 0) {
          for (auto& msg : gathered) {
            const auto count = msg.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              const auto l = msg.unpack<std::uint32_t>();
              levels[l] = msg.unpack_vector<PartId>();
            }
            FOCUS_CHECK(msg.fully_consumed(),
                        "trailing bytes in gathered frame");
          }
          out.partitioning.levels = std::move(levels);
          out.partitioning.finest_cut =
              edge_cut(finest, out.partitioning.levels[0]);
        }
        comm.barrier();
      },
      cost);

  return out;
}

}  // namespace focus::partition
