#include "partition/mlpart.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "mpr/ft_phase.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Graph;
using graph::GraphBuilder;
using graph::GraphHierarchy;

namespace {

/// Below these, the pooled variants of the projection / lift loops cost more
/// than they save (same rationale as coarsen's kParallelHemMinNodes).
constexpr std::size_t kParallelProjectMinNodes = 512;
constexpr std::size_t kParallelLiftMinNodes = 512;

// Induced subgraph over `region`; local ids follow region order.
Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& region,
                       double* work) {
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    local.emplace(region[i], i);
  }
  GraphBuilder builder(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    builder.set_node_weight(i, g.node_weight(region[i]));
    for (const graph::Edge& e : g.neighbors(region[i])) {
      if (work != nullptr) *work += 1.0;
      if (e.to <= region[i]) continue;  // each edge once
      const auto it = local.find(e.to);
      if (it == local.end()) continue;
      builder.add_edge(i, it->second, e.weight);
    }
  }
  return builder.build();
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  return splitmix64(s);
}

}  // namespace

std::vector<std::uint8_t> bisect_region(const Graph& g,
                                        const std::vector<NodeId>& region,
                                        const PartitionerConfig& config,
                                        std::uint64_t region_seed,
                                        Weight region_weight, double* work,
                                        ThreadPool* pool,
                                        BisectRegionAccounting* acct) {
  std::vector<std::uint8_t> side(region.size(), 0);
  if (region.size() < 2) return side;

  const Graph sub = induced_subgraph(g, region, work);
  // The caller accounts node-weight totals once, at the split point; the
  // induced subgraph copies node weights verbatim, so they must agree.
  FOCUS_ASSERT(sub.total_node_weight() == region_weight,
               "region weight drifted from induced subgraph");

  // Coarsen the region. Coarse-node weight is capped (Karypis & Kumar's
  // maxvwgt) so the coarsest graph always admits a balanced bisection even
  // when the input nodes (hybrid read clusters) have very uneven weights.
  graph::CoarsenConfig cc = config.coarsen;
  cc.seed = region_seed;
  cc.max_node_weight = std::max<Weight>(
      1, 3 * region_weight /
             (2 * static_cast<Weight>(std::max<std::size_t>(cc.min_nodes, 1))));
  const GraphHierarchy mini = graph::build_multilevel(sub, cc);
  if (work != nullptr) {
    for (const Graph& level : mini.levels) {
      *work += static_cast<double>(level.edge_count());
    }
  }

  // Multi-trial initial bisection on the coarsest graph (Karypis & Kumar:
  // grow several randomly seeded bisections, keep the best). Trial t draws
  // its Rng purely from (seed, region, t); the winner is the total-order
  // argmin of (coarsest cut, trial), so the choice is independent of
  // evaluation order. Trials run concurrently on the pool — each charges a
  // private work slot, merged in trial order — which turns the serial root
  // bisection into pool-wide work. trials == 1 keeps the original direct
  // charging so the single-trial accounting stays bit-identical to the
  // pre-trials partitioner.
  double* pooled_work = acct != nullptr ? &acct->pooled_work : nullptr;
  const std::size_t trials = std::max<unsigned>(config.trials, 1);
  std::vector<PartId> part;
  if (trials == 1) {
    Rng rng(mix_seed(region_seed, 0x600d, 0x5eed));
    part = greedy_graph_growing(mini.coarsest(), rng, config.ggg, work);
    kl_bisection_refine(mini.coarsest(), part, config.kl, work, pool,
                        pooled_work);
  } else {
    struct Trial {
      std::vector<PartId> part;
      Weight cut = 0;
      double work = 0.0;
    };
    std::vector<Trial> runs(trials);
    const auto run_trial = [&](std::size_t t) {
      // Trial KL instances stay single-threaded: the trials themselves are
      // the parallelism here, and their pooled-eligible work is already
      // covered by the per-trial slots (no double counting in acct).
      Rng rng(mix_seed(region_seed, 0x600d, 0x5eed + t));
      Trial& r = runs[t];
      r.part = greedy_graph_growing(mini.coarsest(), rng, config.ggg, &r.work);
      r.cut = kl_bisection_refine(mini.coarsest(), r.part, config.kl, &r.work,
                                  nullptr);
    };
    if (pool != nullptr && pool->thread_count() > 1) {
      pool->parallel_for(trials, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) run_trial(t);
      });
    } else {
      for (std::size_t t = 0; t < trials; ++t) run_trial(t);
    }
    std::size_t winner = 0;
    for (std::size_t t = 1; t < trials; ++t) {
      if (runs[t].cut < runs[winner].cut) winner = t;  // ties keep earliest
    }
    if (acct != nullptr) acct->trial_work.resize(trials);
    for (std::size_t t = 0; t < trials; ++t) {
      if (work != nullptr) *work += runs[t].work;
      if (acct != nullptr) acct->trial_work[t] = runs[t].work;
    }
    part = std::move(runs[winner].part);
  }

  // Project and refine down to the region's finest level. Each fine node
  // reads only its own parent's label, so the projection is a parallel
  // scoring pass with disjoint writes.
  for (std::size_t l = mini.depth() - 1; l-- > 0;) {
    const auto& parent = mini.parent[l];
    std::vector<PartId> fine(mini.levels[l].node_count());
    if (pool != nullptr && pool->thread_count() > 1 &&
        fine.size() >= kParallelProjectMinNodes) {
      pool->parallel_for(fine.size(), 2048, [&](std::size_t b, std::size_t e) {
        for (std::size_t v = b; v < e; ++v) fine[v] = part[parent[v]];
      });
    } else {
      for (NodeId v = 0; v < fine.size(); ++v) {
        fine[v] = part[parent[v]];
      }
    }
    part = std::move(fine);
    kl_bisection_refine(mini.levels[l], part, config.kl, work, pool,
                        pooled_work);
  }

  for (std::size_t i = 0; i < region.size(); ++i) {
    side[i] = static_cast<std::uint8_t>(part[i]);
  }
  return side;
}

std::vector<std::vector<PartId>> lift_partition(const GraphHierarchy& h,
                                                const std::vector<PartId>& finest,
                                                PartId parts, ThreadPool* pool) {
  const std::size_t depth = h.depth();
  std::vector<std::vector<PartId>> levels(depth);
  levels[0] = finest;
  for (std::size_t l = 1; l < depth; ++l) {
    const std::size_t n = h.levels[l].node_count();
    // Majority node-weight vote of the children's parts. The tally scatters
    // into per-parent buckets and stays serial; the winner selection reads
    // one bucket and writes one slot per coarse node, so it parallelizes.
    std::vector<std::unordered_map<PartId, Weight>> votes(n);
    const Graph& fine = h.levels[l - 1];
    for (NodeId v = 0; v < fine.node_count(); ++v) {
      votes[h.parent[l - 1][v]][levels[l - 1][v]] += fine.node_weight(v);
    }
    levels[l].assign(n, kNoPart);
    const auto pick_winners = [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        FOCUS_ASSERT(!votes[v].empty(), "coarse node with no children");
        PartId best = kNoPart;
        Weight best_weight = -1;
        for (PartId p = 0; p < parts; ++p) {
          const auto it = votes[v].find(p);
          if (it == votes[v].end()) continue;
          if (it->second > best_weight) {
            best = p;
            best_weight = it->second;
          }
        }
        levels[l][v] = best;
      }
    };
    if (pool != nullptr && pool->thread_count() > 1 &&
        n >= kParallelLiftMinNodes) {
      pool->parallel_for(n, 512, [&](std::size_t b, std::size_t e) {
        pick_winners(b, e);
      });
    } else {
      pick_winners(0, n);
    }
  }
  return levels;
}

namespace {

// Wave-model recursive bisection, shared by the mpr driver: `run_step`
// executes all regions of one step and returns their side vectors. The
// serial/pooled driver walks the same tree recursively (bisect_subtree);
// both orders visit identical regions with identical seeds — see the
// equivalence argument there — so all drivers produce identical partitions.
template <typename RunStep>
std::vector<PartId> recursive_bisection(const Graph& g, PartId k,
                                        RunStep&& run_step) {
  std::vector<PartId> part(g.node_count(), 0);
  PartId current_parts = 1;
  while (current_parts < k) {
    // Gather regions by current label; total their node weights here — the
    // split point — so bisect_region need not recompute them.
    std::vector<std::vector<NodeId>> regions(
        static_cast<std::size_t>(current_parts));
    std::vector<Weight> region_weights(
        static_cast<std::size_t>(current_parts), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      regions[static_cast<std::size_t>(part[v])].push_back(v);
      region_weights[static_cast<std::size_t>(part[v])] += g.node_weight(v);
    }
    const std::vector<std::vector<std::uint8_t>> sides =
        run_step(regions, region_weights, current_parts);
    FOCUS_ASSERT(sides.size() == regions.size(), "bisection step size mismatch");
    for (std::size_t r = 0; r < regions.size(); ++r) {
      FOCUS_ASSERT(sides[r].size() == regions[r].size(),
                   "bisection side vector mismatch");
      for (std::size_t i = 0; i < regions[r].size(); ++i) {
        if (sides[r][i] != 0) {
          part[regions[r][i]] =
              static_cast<PartId>(static_cast<PartId>(r) + current_parts);
        }
      }
    }
    current_parts *= 2;
  }
  return part;
}

void check_k(PartId k) {
  FOCUS_CHECK(k >= 1 && (k & (k - 1)) == 0,
              "partition count must be a power of two (recursive bisection)");
}

// Shared state of one recursion-tree walk (bisect_subtree).
struct BisectTreeCtx {
  const Graph* g;
  const PartitionerConfig* config;
  PartId k;
  std::vector<PartId>* part;                    // final labels; disjoint writes
  std::vector<std::vector<double>>* step_work;  // [step][label] work slots
  // [step][label] intra-bisection accounting slots (per-trial / pooled work).
  std::vector<std::vector<std::vector<double>>>* step_trial_work;
  std::vector<std::vector<double>>* step_pooled_work;
  ThreadPool* pool;                             // nullptr => serial
};

// Recursion-tree driver used by partition_hierarchy. Equivalence with the
// wave model above, by induction over steps:
//  * a node's wave label after step s equals the label its recursion-tree
//    region carries at depth s (the root starts at label 0; a side-1 node
//    gains `label + 2^s`, exactly the wave's relabeling `r + current_parts`
//    with r == label);
//  * the wave gathers region r by scanning nodes in ascending id, and the
//    recursion's splits preserve ascending order from an ascending root, so
//    region node lists are identical;
//  * seeds are mix_seed(seed, step, label) on both sides.
// Hence every bisect_region call sees identical inputs, and since sibling
// subtrees touch disjoint node sets and disjoint work slots, the two halves
// of each split can run concurrently (fork_join) without changing a byte.
void bisect_subtree(const BisectTreeCtx& ctx, std::vector<NodeId>& region,
                    Weight region_weight, std::size_t step, PartId label) {
  if ((static_cast<PartId>(1) << step) >= ctx.k) {
    for (const NodeId v : region) (*ctx.part)[v] = label;
    return;
  }
  double* work = &(*ctx.step_work)[step][static_cast<std::size_t>(label)];
  BisectRegionAccounting acct;
  const std::vector<std::uint8_t> side = bisect_region(
      *ctx.g, region, *ctx.config,
      mix_seed(ctx.config->seed, step, static_cast<std::uint64_t>(label)),
      region_weight, work, ctx.pool, &acct);
  (*ctx.step_trial_work)[step][static_cast<std::size_t>(label)] =
      std::move(acct.trial_work);
  (*ctx.step_pooled_work)[step][static_cast<std::size_t>(label)] =
      acct.pooled_work;

  // Split, totalling the child weights here so the children inherit their
  // node-weight accounting from the split point.
  std::vector<NodeId> child0, child1;
  child0.reserve(region.size());
  child1.reserve(region.size() / 2 + 1);
  Weight w0 = 0, w1 = 0;
  for (std::size_t i = 0; i < region.size(); ++i) {
    const NodeId v = region[i];
    if (side[i] != 0) {
      child1.push_back(v);
      w1 += ctx.g->node_weight(v);
    } else {
      child0.push_back(v);
      w0 += ctx.g->node_weight(v);
    }
  }
  FOCUS_ASSERT(w0 + w1 == region_weight, "split halves do not sum to region");
  region.clear();
  region.shrink_to_fit();  // drop the parent list before recursing

  const PartId label1 =
      static_cast<PartId>(label + (static_cast<PartId>(1) << step));
  if (ctx.pool != nullptr && ctx.pool->thread_count() > 1) {
    ctx.pool->fork_join(
        [&] { bisect_subtree(ctx, child0, w0, step + 1, label); },
        [&] { bisect_subtree(ctx, child1, w1, step + 1, label1); });
  } else {
    bisect_subtree(ctx, child0, w0, step + 1, label);
    bisect_subtree(ctx, child1, w1, step + 1, label1);
  }
}

}  // namespace

HierarchyPartitioning partition_hierarchy(const GraphHierarchy& h, PartId k,
                                          const PartitionerConfig& config) {
  check_k(k);
  const Graph& finest = h.finest();

  std::size_t steps = 0;
  while ((static_cast<PartId>(1) << steps) < k) ++steps;

  const unsigned threads = resolve_thread_count(config.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  HierarchyPartitioning result;
  result.parts = k;
  result.step_work.resize(steps);
  result.step_trial_work.resize(steps);
  result.step_pooled_work.resize(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::size_t regions = static_cast<std::size_t>(1) << s;
    result.step_work[s].assign(regions, 0.0);
    result.step_trial_work[s].assign(regions, {});
    result.step_pooled_work[s].assign(regions, 0.0);
  }

  // Phase 1: recursive bisection over the recursion tree; sibling subtrees
  // run concurrently on the pool.
  std::vector<PartId> part(finest.node_count(), 0);
  {
    std::vector<NodeId> root(finest.node_count());
    std::iota(root.begin(), root.end(), NodeId{0});
    const BisectTreeCtx ctx{&finest,
                            &config,
                            k,
                            &part,
                            &result.step_work,
                            &result.step_trial_work,
                            &result.step_pooled_work,
                            pool};
    bisect_subtree(ctx, root, finest.total_node_weight(), 0, 0);
  }

  // Phase 2: lift to all hierarchy levels.
  result.levels = lift_partition(h, part, k, pool);

  // Phase 3: per-level global k-way refinement. Levels are independent
  // (disjoint part vectors, disjoint work slots), so they run concurrently;
  // each refinement also uses the pool internally for its scoring sweeps.
  result.kway_work.assign(h.depth(), 0.0);
  if (config.kway_refinement) {
    const auto refine_level = [&](std::size_t l) {
      kway_kl_refine(h.levels[l], result.levels[l], k, config.kway,
                     &result.kway_work[l], pool);
    };
    if (pool != nullptr && pool->thread_count() > 1 && h.depth() > 1) {
      pool->parallel_for(h.depth(), 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t l = b; l < e; ++l) refine_level(l);
      });
    } else {
      for (std::size_t l = 0; l < h.depth(); ++l) refine_level(l);
    }
  }

  result.finest_cut = edge_cut(finest, result.levels[0], pool);
  // Fixed-order reduction of the work grid: identical at every pool width.
  double total = 0.0;
  for (const auto& step : result.step_work) {
    for (const double w : step) total += w;
  }
  for (const double w : result.kway_work) total += w;
  result.work = total;
  return result;
}

namespace {

// --- Fault-tolerant mpr driver (DESIGN.md §7 / §7b) -----------------------
//
// Under a non-empty fault plan the driver re-expresses the three phases of
// the fault-free protocol as ft_phase.hpp phases:
//  * bisection step s (phase s, partitions = the 2^s regions of that step):
//    the coordinator rebuilds the regions from its evolving labels and ships
//    each region's node list + weight inside the scan command (pack_state),
//    so workers are stateless and a replayed scan is a pure function of the
//    command payload plus the replicated finest graph. Applying the side
//    vectors to the labels happens between comm ops, so it is crash-atomic.
//  * lift: recomputed locally by whichever rank coordinates (deterministic
//    from the labels), charged like the fault-free replicated lift.
//  * refinement (phase log2(k), partitions = hierarchy levels): commands
//    carry the lifted level labels; records are the refined labels.
// Seeds are mix_seed(seed, phase, region) — identical to the fault-free
// driver's (step_counter, r) — so the recovered partitioning is
// byte-identical to the fault-free one.

std::uint32_t bisection_steps(PartId k) {
  std::uint32_t s = 0;
  while ((static_cast<PartId>(1) << s) < k) ++s;
  return s;
}

// Regions and node weights of one bisection step, gathered from the evolving
// labels in ascending node order — exactly recursive_bisection's gather.
struct StepRegions {
  std::vector<std::vector<NodeId>> regions;
  std::vector<Weight> weights;
};

StepRegions step_regions(const Graph& g, const std::vector<PartId>& part,
                         PartId current_parts) {
  StepRegions s;
  s.regions.resize(static_cast<std::size_t>(current_parts));
  s.weights.assign(static_cast<std::size_t>(current_parts), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    s.regions[static_cast<std::size_t>(part[v])].push_back(v);
    s.weights[static_cast<std::size_t>(part[v])] += g.node_weight(v);
  }
  return s;
}

// Applies one step's side vectors to the labels. The side vectors crossed
// the wire, so the size match is a CHECK, not an assert.
void apply_sides(const StepRegions& s,
                 const std::vector<std::vector<std::uint8_t>>& sides,
                 PartId current_parts, std::vector<PartId>& part) {
  FOCUS_CHECK(sides.size() == s.regions.size(),
              "bisection step record count mismatch");
  for (std::size_t r = 0; r < s.regions.size(); ++r) {
    FOCUS_CHECK(sides[r].size() == s.regions[r].size(),
                "bisection side vector does not match its region");
    for (std::size_t i = 0; i < s.regions[r].size(); ++i) {
      if (sides[r][i] != 0) {
        part[s.regions[r][i]] =
            static_cast<PartId>(static_cast<PartId>(r) + current_parts);
      }
    }
  }
}

// Worker-side cache of shipped scan inputs, keyed by (phase, partition).
// Overwritten on every (re)delivered command, so replayed rounds always
// scan the state the coordinator just shipped.
struct FtScanState {
  struct RegionCmd {
    std::vector<NodeId> nodes;
    Weight weight = 0;
  };
  std::unordered_map<std::uint64_t, RegionCmd> regions;          // bisection
  std::unordered_map<std::uint64_t, std::vector<PartId>> levels;  // refinement

  static std::uint64_t key(std::uint32_t phase, std::uint32_t p) {
    return (static_cast<std::uint64_t>(phase) << 32) | p;
  }
};

ParallelPartitionResult partition_hierarchy_parallel_ft(
    const GraphHierarchy& h, PartId k, const PartitionerConfig& config,
    int nranks, mpr::CostModel cost, const mpr::FaultPlan& fault_plan,
    const mpr::FaultConfig& fault, bool symmetric) {
  const Graph& finest = h.finest();
  const std::uint32_t nsteps = bisection_steps(k);
  const auto depth = static_cast<std::uint32_t>(h.depth());

  ParallelPartitionResult out;
  out.partitioning.parts = k;

  // A level record arriving off the wire must be a complete labeling.
  const auto validate_level = [&](std::uint32_t l,
                                  const std::vector<PartId>& labels) {
    FOCUS_CHECK(l < depth, "refinement record names an invalid level");
    FOCUS_CHECK(labels.size() == h.levels[l].node_count(),
                "refinement level record size mismatch");
    for (const PartId x : labels) {
      FOCUS_CHECK(x >= 0 && x < k, "refinement label out of range");
    }
  };

  // Worker-side hooks: consume shipped state, then scan from it.
  const auto make_unpack_state = [&](FtScanState& state) {
    return [&, nsteps](std::uint32_t phase, std::uint32_t p,
                       mpr::Message& cmd) {
      if (phase < nsteps) {
        FtScanState::RegionCmd rc;
        rc.nodes = cmd.unpack_vector<NodeId>();
        rc.weight = cmd.unpack<Weight>();
        for (const NodeId v : rc.nodes) {
          FOCUS_CHECK(v < finest.node_count(),
                      "region command names an invalid node");
        }
        state.regions[FtScanState::key(phase, p)] = std::move(rc);
      } else {
        FOCUS_CHECK(phase == nsteps, "unknown partition phase in command");
        auto labels = cmd.unpack_vector<PartId>();
        validate_level(p, labels);
        state.levels[FtScanState::key(phase, p)] = std::move(labels);
      }
    };
  };
  const auto make_scan_and_pack = [&](FtScanState& state) {
    return [&, nsteps](std::uint32_t phase, std::uint32_t p,
                       mpr::Message& frame, double* work) {
      if (phase < nsteps) {
        const auto it = state.regions.find(FtScanState::key(phase, p));
        FOCUS_CHECK(it != state.regions.end(),
                    "scan command carried no state for its region");
        frame.pack_vector(bisect_region(
            finest, it->second.nodes, config,
            mix_seed(config.seed, phase, p), it->second.weight, work,
            /*pool=*/nullptr));
      } else {
        const auto it = state.levels.find(FtScanState::key(phase, p));
        FOCUS_CHECK(it != state.levels.end(),
                    "scan command carried no state for its level");
        std::vector<PartId> refined = it->second;
        kway_kl_refine(h.levels[p], refined, k, config.kway, work);
        frame.pack_vector(refined);
      }
    };
  };

  // Coordinator-side per-phase pieces (shared by both protocols).
  const auto bisect_scan_one = [&](const StepRegions& regs, std::uint32_t s) {
    return [&, s](std::uint32_t p, double* work) {
      return bisect_region(finest, regs.regions[p], config,
                           mix_seed(config.seed, s, p), regs.weights[p], work,
                           /*pool=*/nullptr);
    };
  };
  const auto bisect_pack_state = [&](const StepRegions& regs) {
    return [&](std::uint32_t p, mpr::Message& cmd) {
      cmd.pack_vector(regs.regions[p]);
      cmd.pack(regs.weights[p]);
    };
  };
  const auto unpack_side = [](mpr::Message& m) {
    auto side = m.unpack_vector<std::uint8_t>();
    for (const std::uint8_t v : side) {
      FOCUS_CHECK(v <= 1, "bisection side record is not a 0/1 vector");
    }
    return side;
  };
  const auto refine_scan_one =
      [&](const std::vector<std::vector<PartId>>& levels) {
        return [&](std::uint32_t l, double* work) {
          std::vector<PartId> refined = levels[l];
          kway_kl_refine(h.levels[l], refined, k, config.kway, work);
          return refined;
        };
      };
  const auto refine_pack_state =
      [&](const std::vector<std::vector<PartId>>& levels) {
        return [&](std::uint32_t l, mpr::Message& cmd) {
          cmd.pack_vector(levels[l]);
        };
      };
  const auto unpack_level = [](mpr::Message& m) {
    return m.unpack_vector<PartId>();
  };
  const auto charge_lift = [&](mpr::Comm& comm) {
    double lift_work = 0.0;
    for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
      lift_work += static_cast<double>(h.levels[l].node_count());
    }
    comm.charge(lift_work);
  };

  if (symmetric) {
    mpr::SymWal wal;
    wal.live.assign(static_cast<std::size_t>(nranks), 1);
    out.stats = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          FtScanState state;
          mpr::ft_sym_drive(
              comm, wal, fault, make_scan_and_pack(state),
              [&](std::uint32_t phase_start) {
                // Rebuild the labels: committed bisection steps are replayed
                // from the log (a successor inherits them), the rest are
                // collected live and committed one entry per step.
                std::vector<PartId> part(finest.node_count(), 0);
                PartId current_parts = 1;
                const std::uint32_t done =
                    std::min(phase_start, nsteps);
                for (std::uint32_t s = 0; s < nsteps; ++s) {
                  const StepRegions regs =
                      step_regions(finest, part, current_parts);
                  std::vector<std::vector<std::uint8_t>> sides;
                  if (s < done) {
                    mpr::Message payload;
                    {
                      std::lock_guard<std::mutex> lock(wal.mu);
                      payload = wal.entries[s].payload;
                    }
                    sides.resize(static_cast<std::size_t>(current_parts));
                    for (auto& side : sides) side = unpack_side(payload);
                    FOCUS_CHECK(payload.fully_consumed(),
                                "trailing bytes in bisection log entry");
                  } else {
                    sides = mpr::sym_collect_phase<std::vector<std::uint8_t>>(
                        comm, wal, static_cast<std::uint32_t>(current_parts),
                        s, fault, bisect_scan_one(regs, s), unpack_side,
                        mpr::FtOrder::kAscending, bisect_pack_state(regs));
                    mpr::SymWal::Entry entry;
                    for (const auto& side : sides) {
                      entry.payload.pack_vector(side);
                    }
                    entry.counts.assign(1, sides.size());
                    mpr::sym_wal_commit(comm, wal, std::move(entry));
                  }
                  apply_sides(regs, sides, current_parts, part);
                  current_parts *= 2;
                }

                // Lift is recomputed deterministically by whichever rank
                // coordinates — cheaper than logging every level.
                charge_lift(comm);
                auto levels = lift_partition(h, part, k);

                if (config.kway_refinement) {
                  bool committed = false;
                  {
                    std::lock_guard<std::mutex> lock(wal.mu);
                    committed = wal.entries.size() > nsteps;
                  }
                  if (!committed) {
                    auto refined = mpr::sym_collect_phase<std::vector<PartId>>(
                        comm, wal, depth, nsteps, fault,
                        refine_scan_one(levels), unpack_level,
                        mpr::FtOrder::kAscending, refine_pack_state(levels));
                    mpr::SymWal::Entry entry;
                    for (const auto& labels : refined) {
                      entry.payload.pack_vector(labels);
                    }
                    entry.counts.assign(1, refined.size());
                    mpr::sym_wal_commit(comm, wal, std::move(entry));
                  }
                  // Publish from the durable record — identical whether this
                  // rank refined the levels itself or inherited them.
                  mpr::Message payload;
                  {
                    std::lock_guard<std::mutex> lock(wal.mu);
                    payload = wal.entries[nsteps].payload;
                  }
                  for (std::uint32_t l = 0; l < depth; ++l) {
                    levels[l] = payload.unpack_vector<PartId>();
                    validate_level(l, levels[l]);
                  }
                  FOCUS_CHECK(payload.fully_consumed(),
                              "trailing bytes in refinement log entry");
                }

                out.partitioning.levels = std::move(levels);
                out.partitioning.finest_cut =
                    edge_cut(finest, out.partitioning.levels[0]);
              },
              make_unpack_state(state));
        },
        cost, fault_plan);
    return out;
  }

  out.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        if (comm.rank() == 0) {
          mpr::FtMasterState st;
          st.live.assign(static_cast<std::size_t>(comm.size()), 1);

          std::vector<PartId> part(finest.node_count(), 0);
          PartId current_parts = 1;
          for (std::uint32_t s = 0; s < nsteps; ++s) {
            const StepRegions regs = step_regions(finest, part, current_parts);
            const auto sides =
                mpr::ft_collect_phase<std::vector<std::uint8_t>>(
                    comm, st, static_cast<std::uint32_t>(current_parts), s,
                    fault, bisect_scan_one(regs, s), unpack_side,
                    mpr::FtOrder::kAscending, bisect_pack_state(regs));
            apply_sides(regs, sides, current_parts, part);
            current_parts *= 2;
          }

          charge_lift(comm);
          auto levels = lift_partition(h, part, k);

          if (config.kway_refinement) {
            auto refined = mpr::ft_collect_phase<std::vector<PartId>>(
                comm, st, depth, nsteps, fault, refine_scan_one(levels),
                unpack_level, mpr::FtOrder::kAscending,
                refine_pack_state(levels));
            for (std::uint32_t l = 0; l < depth; ++l) {
              validate_level(l, refined[l]);
              levels[l] = std::move(refined[l]);
            }
          }

          out.partitioning.levels = std::move(levels);
          out.partitioning.finest_cut =
              edge_cut(finest, out.partitioning.levels[0]);
          mpr::ft_shutdown_workers(comm, st);
        } else {
          FtScanState state;
          mpr::ft_worker_loop(comm, make_scan_and_pack(state),
                              make_unpack_state(state));
        }
      },
      cost, fault_plan);
  return out;
}

}  // namespace

ParallelPartitionResult partition_hierarchy_parallel(
    const GraphHierarchy& h, PartId k, const PartitionerConfig& config,
    int nranks, mpr::CostModel cost, const mpr::FaultPlan& fault_plan,
    const mpr::FaultConfig& fault, bool symmetric) {
  check_k(k);
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  const Graph& finest = h.finest();

  if (!fault_plan.empty()) {
    return partition_hierarchy_parallel_ft(h, k, config, nranks, cost,
                                           fault_plan, fault, symmetric);
  }

  ParallelPartitionResult out;
  out.partitioning.parts = k;

  out.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        const int p = comm.size();
        const Rank me = comm.rank();

        // --- Phase 1: recursive bisection, regions round-robin over ranks.
        // Each rank's region bodies stay single-threaded (pool == nullptr):
        // rank-level concurrency is the quantity under measurement here, and
        // stacking a host pool under every virtual rank would oversubscribe
        // the host (same policy as CoarsenConfig.threads for HEM).
        std::uint64_t step_counter = 0;
        std::vector<PartId> part = recursive_bisection(
            finest, k,
            [&](const std::vector<std::vector<NodeId>>& regions,
                const std::vector<Weight>& region_weights, PartId) {
              std::vector<std::vector<std::uint8_t>> sides(regions.size());
              // Compute my regions.
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                double work = 0.0;
                sides[r] = bisect_region(
                    finest, regions[r], config,
                    mix_seed(config.seed, step_counter, r), region_weights[r],
                    &work, /*pool=*/nullptr);
                comm.charge(work);
              }
              // Exchange: everyone needs all side vectors before the next
              // step. Gather to rank 0, then broadcast the full set.
              mpr::Message local;
              std::uint32_t mine = 0;
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) == me) {
                  ++mine;
                }
              }
              local.pack(mine);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                local.pack(static_cast<std::uint32_t>(r));
                local.pack_vector(sides[r]);
              }
              auto gathered = comm.gather(std::move(local), 0);
              mpr::Message full;
              if (me == 0) {
                for (auto& msg : gathered) {
                  const auto count = msg.unpack<std::uint32_t>();
                  for (std::uint32_t i = 0; i < count; ++i) {
                    const auto r = msg.unpack<std::uint32_t>();
                    sides[r] = msg.unpack_vector<std::uint8_t>();
                  }
                  FOCUS_CHECK(msg.fully_consumed(),
                              "trailing bytes in gathered frame");
                }
                for (std::size_t r = 0; r < regions.size(); ++r) {
                  full.pack_vector(sides[r]);
                }
              }
              full = comm.broadcast(std::move(full), 0);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                sides[r] = full.unpack_vector<std::uint8_t>();
              }
              ++step_counter;
              return sides;
            });

        // --- Phase 2: lift to all levels (replicated; cheap).
        {
          double lift_work = 0.0;
          for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
            lift_work += static_cast<double>(h.levels[l].node_count());
          }
          comm.charge(lift_work);
        }
        auto levels = lift_partition(h, part, k);

        // --- Phase 3: per-level global k-way refinement, levels round-robin
        // over ranks; refined levels gathered at rank 0.
        if (config.kway_refinement) {
          for (std::size_t l = 0; l < h.depth(); ++l) {
            if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) {
              continue;
            }
            double work = 0.0;
            kway_kl_refine(h.levels[l], levels[l], k, config.kway, &work);
            comm.charge(work);
          }
        }
        mpr::Message local;
        std::uint32_t mine = 0;
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) == me) ++mine;
        }
        local.pack(mine);
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) continue;
          local.pack(static_cast<std::uint32_t>(l));
          local.pack_vector(levels[l]);
        }
        auto gathered = comm.gather(std::move(local), 0);
        if (me == 0) {
          for (auto& msg : gathered) {
            const auto count = msg.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              const auto l = msg.unpack<std::uint32_t>();
              levels[l] = msg.unpack_vector<PartId>();
            }
            FOCUS_CHECK(msg.fully_consumed(),
                        "trailing bytes in gathered frame");
          }
          out.partitioning.levels = std::move(levels);
          out.partitioning.finest_cut =
              edge_cut(finest, out.partitioning.levels[0]);
        }
        comm.barrier();
      },
      cost);

  return out;
}

}  // namespace focus::partition
