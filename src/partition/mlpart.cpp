#include "partition/mlpart.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "partition/partition.hpp"

namespace focus::partition {

using graph::Graph;
using graph::GraphBuilder;
using graph::GraphHierarchy;

namespace {

// Induced subgraph over `region`; local ids follow region order.
Graph induced_subgraph(const Graph& g, const std::vector<NodeId>& region,
                       double* work) {
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    local.emplace(region[i], i);
  }
  GraphBuilder builder(region.size());
  for (NodeId i = 0; i < region.size(); ++i) {
    builder.set_node_weight(i, g.node_weight(region[i]));
    for (const graph::Edge& e : g.neighbors(region[i])) {
      if (work != nullptr) *work += 1.0;
      if (e.to <= region[i]) continue;  // each edge once
      const auto it = local.find(e.to);
      if (it == local.end()) continue;
      builder.add_edge(i, it->second, e.weight);
    }
  }
  return builder.build();
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xc2b2ae3d27d4eb4fULL);
  return splitmix64(s);
}

}  // namespace

std::vector<std::uint8_t> bisect_region(const Graph& g,
                                        const std::vector<NodeId>& region,
                                        const PartitionerConfig& config,
                                        std::uint64_t region_seed,
                                        double* work) {
  std::vector<std::uint8_t> side(region.size(), 0);
  if (region.size() < 2) return side;

  const Graph sub = induced_subgraph(g, region, work);

  // Coarsen the region. Coarse-node weight is capped (Karypis & Kumar's
  // maxvwgt) so the coarsest graph always admits a balanced bisection even
  // when the input nodes (hybrid read clusters) have very uneven weights.
  graph::CoarsenConfig cc = config.coarsen;
  cc.seed = region_seed;
  cc.max_node_weight = std::max<Weight>(
      1, 3 * sub.total_node_weight() /
             (2 * static_cast<Weight>(std::max<std::size_t>(cc.min_nodes, 1))));
  const GraphHierarchy mini = graph::build_multilevel(sub, cc);
  if (work != nullptr) {
    for (const Graph& level : mini.levels) {
      *work += static_cast<double>(level.edge_count());
    }
  }

  // Initial bisection on the coarsest graph.
  Rng rng(mix_seed(region_seed, 0x600d, 0x5eed));
  std::vector<PartId> part =
      greedy_graph_growing(mini.coarsest(), rng, config.ggg, work);
  kl_bisection_refine(mini.coarsest(), part, config.kl, work);

  // Project and refine down to the region's finest level.
  for (std::size_t l = mini.depth() - 1; l-- > 0;) {
    std::vector<PartId> fine(mini.levels[l].node_count());
    for (NodeId v = 0; v < fine.size(); ++v) {
      fine[v] = part[mini.parent[l][v]];
    }
    part = std::move(fine);
    kl_bisection_refine(mini.levels[l], part, config.kl, work);
  }

  for (std::size_t i = 0; i < region.size(); ++i) {
    side[i] = static_cast<std::uint8_t>(part[i]);
  }
  return side;
}

std::vector<std::vector<PartId>> lift_partition(const GraphHierarchy& h,
                                                const std::vector<PartId>& finest,
                                                PartId parts) {
  const std::size_t depth = h.depth();
  std::vector<std::vector<PartId>> levels(depth);
  levels[0] = finest;
  for (std::size_t l = 1; l < depth; ++l) {
    const std::size_t n = h.levels[l].node_count();
    // Majority node-weight vote of the children's parts.
    std::vector<std::unordered_map<PartId, Weight>> votes(n);
    const Graph& fine = h.levels[l - 1];
    for (NodeId v = 0; v < fine.node_count(); ++v) {
      votes[h.parent[l - 1][v]][levels[l - 1][v]] += fine.node_weight(v);
    }
    levels[l].assign(n, kNoPart);
    for (NodeId v = 0; v < n; ++v) {
      FOCUS_ASSERT(!votes[v].empty(), "coarse node with no children");
      PartId best = kNoPart;
      Weight best_weight = -1;
      for (PartId p = 0; p < parts; ++p) {
        const auto it = votes[v].find(p);
        if (it == votes[v].end()) continue;
        if (it->second > best_weight) {
          best = p;
          best_weight = it->second;
        }
      }
      levels[l][v] = best;
    }
  }
  return levels;
}

namespace {

// Shared logic: runs the recursive bisection steps. `run_step` executes all
// regions of one step and returns their side vectors; used by both the
// serial and the parallel driver so they produce identical partitions.
template <typename RunStep>
std::vector<PartId> recursive_bisection(const Graph& g, PartId k,
                                        RunStep&& run_step) {
  std::vector<PartId> part(g.node_count(), 0);
  PartId current_parts = 1;
  while (current_parts < k) {
    // Gather regions by current label.
    std::vector<std::vector<NodeId>> regions(
        static_cast<std::size_t>(current_parts));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      regions[static_cast<std::size_t>(part[v])].push_back(v);
    }
    const std::vector<std::vector<std::uint8_t>> sides =
        run_step(regions, current_parts);
    FOCUS_ASSERT(sides.size() == regions.size(), "bisection step size mismatch");
    for (std::size_t r = 0; r < regions.size(); ++r) {
      FOCUS_ASSERT(sides[r].size() == regions[r].size(),
                   "bisection side vector mismatch");
      for (std::size_t i = 0; i < regions[r].size(); ++i) {
        if (sides[r][i] != 0) {
          part[regions[r][i]] =
              static_cast<PartId>(static_cast<PartId>(r) + current_parts);
        }
      }
    }
    current_parts *= 2;
  }
  return part;
}

void check_k(PartId k) {
  FOCUS_CHECK(k >= 1 && (k & (k - 1)) == 0,
              "partition count must be a power of two (recursive bisection)");
}

}  // namespace

HierarchyPartitioning partition_hierarchy(const GraphHierarchy& h, PartId k,
                                          const PartitionerConfig& config) {
  check_k(k);
  const Graph& finest = h.finest();
  double work = 0.0;

  std::uint64_t step_counter = 0;
  const std::vector<PartId> part = recursive_bisection(
      finest, k,
      [&](const std::vector<std::vector<NodeId>>& regions, PartId) {
        std::vector<std::vector<std::uint8_t>> sides(regions.size());
        for (std::size_t r = 0; r < regions.size(); ++r) {
          sides[r] = bisect_region(
              finest, regions[r], config,
              mix_seed(config.seed, step_counter, r), &work);
        }
        ++step_counter;
        return sides;
      });

  HierarchyPartitioning result;
  result.parts = k;
  result.levels = lift_partition(h, part, k);
  if (config.kway_refinement) {
    for (std::size_t l = 0; l < h.depth(); ++l) {
      kway_kl_refine(h.levels[l], result.levels[l], k, config.kway, &work);
    }
  }
  result.finest_cut = edge_cut(finest, result.levels[0]);
  result.work = work;
  return result;
}

ParallelPartitionResult partition_hierarchy_parallel(
    const GraphHierarchy& h, PartId k, const PartitionerConfig& config,
    int nranks, mpr::CostModel cost) {
  check_k(k);
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  const Graph& finest = h.finest();

  ParallelPartitionResult out;
  out.partitioning.parts = k;

  out.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        const int p = comm.size();
        const Rank me = comm.rank();

        // --- Phase 1: recursive bisection, regions round-robin over ranks.
        std::uint64_t step_counter = 0;
        std::vector<PartId> part = recursive_bisection(
            finest, k,
            [&](const std::vector<std::vector<NodeId>>& regions, PartId) {
              std::vector<std::vector<std::uint8_t>> sides(regions.size());
              // Compute my regions.
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                double work = 0.0;
                sides[r] = bisect_region(
                    finest, regions[r], config,
                    mix_seed(config.seed, step_counter, r), &work);
                comm.charge(work);
              }
              // Exchange: everyone needs all side vectors before the next
              // step. Gather to rank 0, then broadcast the full set.
              mpr::Message local;
              std::uint32_t mine = 0;
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) == me) {
                  ++mine;
                }
              }
              local.pack(mine);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                if (static_cast<int>(r % static_cast<std::size_t>(p)) != me) {
                  continue;
                }
                local.pack(static_cast<std::uint32_t>(r));
                local.pack_vector(sides[r]);
              }
              auto gathered = comm.gather(std::move(local), 0);
              mpr::Message full;
              if (me == 0) {
                for (auto& msg : gathered) {
                  const auto count = msg.unpack<std::uint32_t>();
                  for (std::uint32_t i = 0; i < count; ++i) {
                    const auto r = msg.unpack<std::uint32_t>();
                    sides[r] = msg.unpack_vector<std::uint8_t>();
                  }
                }
                for (std::size_t r = 0; r < regions.size(); ++r) {
                  full.pack_vector(sides[r]);
                }
              }
              full = comm.broadcast(std::move(full), 0);
              for (std::size_t r = 0; r < regions.size(); ++r) {
                sides[r] = full.unpack_vector<std::uint8_t>();
              }
              ++step_counter;
              return sides;
            });

        // --- Phase 2: lift to all levels (replicated; cheap).
        {
          double lift_work = 0.0;
          for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
            lift_work += static_cast<double>(h.levels[l].node_count());
          }
          comm.charge(lift_work);
        }
        auto levels = lift_partition(h, part, k);

        // --- Phase 3: per-level global k-way refinement, levels round-robin
        // over ranks; refined levels gathered at rank 0.
        if (config.kway_refinement) {
          for (std::size_t l = 0; l < h.depth(); ++l) {
            if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) {
              continue;
            }
            double work = 0.0;
            kway_kl_refine(h.levels[l], levels[l], k, config.kway, &work);
            comm.charge(work);
          }
        }
        mpr::Message local;
        std::uint32_t mine = 0;
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) == me) ++mine;
        }
        local.pack(mine);
        for (std::size_t l = 0; l < h.depth(); ++l) {
          if (static_cast<int>(l % static_cast<std::size_t>(p)) != me) continue;
          local.pack(static_cast<std::uint32_t>(l));
          local.pack_vector(levels[l]);
        }
        auto gathered = comm.gather(std::move(local), 0);
        if (me == 0) {
          for (auto& msg : gathered) {
            const auto count = msg.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              const auto l = msg.unpack<std::uint32_t>();
              levels[l] = msg.unpack_vector<PartId>();
            }
          }
          out.partitioning.levels = std::move(levels);
          out.partitioning.finest_cut =
              edge_cut(finest, out.partitioning.levels[0]);
        }
        comm.barrier();
      },
      cost);

  return out;
}

}  // namespace focus::partition
