// Global k-way Kernighan–Lin refinement (paper §IV-D, after Karypis &
// Kumar's k-way scheme [19]).
//
// Boundary nodes (external cost > 0) enter a gain priority queue with
// gain = E − I. Nodes are evaluated in descending gain; each moves to the
// adjacent partition with the greatest external cost, unless the target is
// already 1.03× heavier than the source (node-weight balance). After fifty
// moves without improving the maximal partial gain sum the pass ends, moves
// past the maximum are undone, and passes repeat until no improvement.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

struct KwayConfig {
  std::size_t idle_move_limit = 50;
  std::size_t max_passes = 8;
  /// A move into Pj from Pi is rejected when w(Pj) >= bound * w(Pi).
  double balance_bound = 1.03;
};

/// Refines a k-way partitioning in place; returns the final edge cut.
Weight kway_kl_refine(const graph::Graph& g, std::vector<PartId>& part,
                      PartId parts, const KwayConfig& config = {},
                      double* work = nullptr);

}  // namespace focus::partition
