// Global k-way Kernighan–Lin refinement (paper §IV-D, after Karypis &
// Kumar's k-way scheme [19]).
//
// Boundary nodes (external cost > 0) enter a gain priority queue with
// gain = E − I. Nodes are evaluated in descending gain; each moves to the
// adjacent partition with the greatest external cost, unless the target is
// already 1.03× heavier than the source (node-weight balance). After fifty
// moves without improving the maximal partial gain sum the pass ends, moves
// past the maximum are undone, and passes repeat until no improvement.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

struct KwayConfig {
  std::size_t idle_move_limit = 50;
  std::size_t max_passes = 8;
  /// A move into Pj from Pi is rejected when w(Pj) >= bound * w(Pi).
  double balance_bound = 1.03;
};

/// Refines a k-way partitioning in place; returns the final edge cut.
///
/// With a pool, the per-pass queue seeding (external cost + gain for every
/// node, an O(E) sweep) runs as a parallel scoring pass into per-node slots;
/// the heap is then seeded by a sequential commit loop in node order, so the
/// queue contents — and the accumulated `work` — are bit-identical at every
/// pool width. The move loop itself is inherently sequential (each move
/// changes the gains it reads) and stays serial.
Weight kway_kl_refine(const graph::Graph& g, std::vector<PartId>& part,
                      PartId parts, const KwayConfig& config = {},
                      double* work = nullptr, ThreadPool* pool = nullptr);

}  // namespace focus::partition
