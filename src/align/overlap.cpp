#include "align/overlap.hpp"

namespace focus::align {

namespace {

OverlapKind flipped_kind(OverlapKind kind) {
  switch (kind) {
    case OverlapKind::kSuffixPrefix:
      return OverlapKind::kPrefixSuffix;
    case OverlapKind::kPrefixSuffix:
      return OverlapKind::kSuffixPrefix;
    case OverlapKind::kQueryContained:
      return OverlapKind::kRefContained;
    case OverlapKind::kRefContained:
      return OverlapKind::kQueryContained;
  }
  return kind;
}

}  // namespace

Overlap flipped(const Overlap& o) {
  Overlap out = o;
  out.query = o.ref;
  out.ref = o.query;
  out.kind = flipped_kind(o.kind);
  return out;
}

Overlap canonicalized(const Overlap& o) {
  return o.query <= o.ref ? o : flipped(o);
}

}  // namespace focus::align
