// Thread-local scratch arena for the alignment hot path.
//
// Every buffer the seed-and-verify loop needs — banded-NW DP rows, the move
// matrix, per-member seed-diagonal lists, candidate lists, and the packed
// query — lives here, grows monotonically, and is reused across calls. After
// warmup (once each buffer has reached the largest size the workload
// demands), neither banded_global_align() nor the query loop performs any
// heap allocation; bench/bench_align verifies the zero-allocation property
// with a counting operator new.
//
// One arena exists per thread (work-stealing pool workers and mpr rank
// threads each get their own), so no synchronization is needed and TSan
// stays clean. Scratch contents never influence results: every user fully
// overwrites or clears the ranges it reads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/packed_seq.hpp"
#include "common/types.hpp"

namespace focus::align {

struct AlignScratch {
  // Banded-NW rows (score-only and full pass) and the move matrix
  // (full pass only).
  std::vector<std::int32_t> nw_prev;
  std::vector<std::int32_t> nw_cur;
  std::vector<std::uint8_t> nw_moves;

  // Seed-hit collection: diagonal lists indexed by reference member index,
  // the member indices touched by the current query (whose lists are
  // non-empty), and the candidate (ReadId, member) pairs that reached
  // min_kmer_hits.
  std::vector<std::vector<std::int64_t>> member_diags;
  std::vector<std::uint32_t> touched;
  std::vector<std::pair<ReadId, std::uint32_t>> candidates;

  // 2-bit packed copy of the current query read.
  dna::PackedSeq query_packed;
};

/// The calling thread's scratch arena.
inline AlignScratch& tls_align_scratch() {
  thread_local AlignScratch scratch;
  return scratch;
}

}  // namespace focus::align
