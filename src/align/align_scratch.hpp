// Thread-local scratch arena for the alignment hot path.
//
// Every buffer the seed-and-verify loop needs — banded-NW DP rows, the move
// matrix, per-member seed-diagonal lists, candidate lists, and the packed
// query — lives here, grows monotonically, and is reused across calls. After
// warmup (once each buffer has reached the largest size the workload
// demands), neither banded_global_align() nor the query loop performs any
// heap allocation; bench/bench_align verifies the zero-allocation property
// with a counting operator new.
//
// One arena exists per thread (work-stealing pool workers and mpr rank
// threads each get their own), so no synchronization is needed and TSan
// stays clean. Scratch contents never influence results: every user fully
// overwrites or clears the ranges it reads.
//
// Lifetime across jobs: arenas warm to the largest workload a thread has
// ever seen and would otherwise persist for the thread's lifetime — a
// hazard for the multi-tenant job runtime, where one huge job would pin its
// high-water arenas on every lane thread forever and leak its sizing into
// every later job. reset(soft_cap) is the job-boundary hook: the scheduler
// calls it on the lane thread after each job, releasing the arena only when
// its footprint exceeds the cap (so same-sized consecutive jobs keep the
// zero-alloc-after-warmup property that bench_align proves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/packed_seq.hpp"
#include "common/types.hpp"

namespace focus::align {

struct AlignScratch {
  // Banded-NW rows (score-only and full pass) and the move matrix
  // (full pass only).
  std::vector<std::int32_t> nw_prev;
  std::vector<std::int32_t> nw_cur;
  std::vector<std::uint8_t> nw_moves;

  // Seed-hit collection: diagonal lists indexed by reference member index,
  // the member indices touched by the current query (whose lists are
  // non-empty), and the candidate (ReadId, member) pairs that reached
  // min_kmer_hits.
  std::vector<std::vector<std::int64_t>> member_diags;
  std::vector<std::uint32_t> touched;
  std::vector<std::pair<ReadId, std::uint32_t>> candidates;

  // 2-bit packed copy of the current query read.
  dna::PackedSeq query_packed;

  /// Retained heap bytes across every buffer (capacities, not sizes).
  std::size_t footprint_bytes() const {
    std::size_t total = 0;
    total += nw_prev.capacity() * sizeof(std::int32_t);
    total += nw_cur.capacity() * sizeof(std::int32_t);
    total += nw_moves.capacity() * sizeof(std::uint8_t);
    total += member_diags.capacity() * sizeof(std::vector<std::int64_t>);
    for (const auto& diags : member_diags) {
      total += diags.capacity() * sizeof(std::int64_t);
    }
    total += touched.capacity() * sizeof(std::uint32_t);
    total +=
        candidates.capacity() * sizeof(std::pair<ReadId, std::uint32_t>);
    total += query_packed.base_words().capacity() * sizeof(std::uint64_t);
    total += query_packed.mask_words().capacity() * sizeof(std::uint64_t);
    return total;
  }

  /// Job-boundary soft cap: releases every buffer when the retained
  /// footprint exceeds `soft_cap_bytes` (0 = always release). Under the cap
  /// the arena is kept warm, so a following job of similar size still runs
  /// allocation-free after its first query.
  void reset(std::size_t soft_cap_bytes) {
    if (soft_cap_bytes > 0 && footprint_bytes() <= soft_cap_bytes) return;
    *this = AlignScratch{};
  }
};

/// The calling thread's scratch arena.
inline AlignScratch& tls_align_scratch() {
  thread_local AlignScratch scratch;
  return scratch;
}

}  // namespace focus::align
