// Read overlap detection (paper §II-B, "Parallel Read Alignment").
//
// The read set is split into subsets; for every ordered-pair-free combination
// of subsets (i, j), i <= j, the reference subset j is indexed and every
// query read of subset i is:
//   1. decomposed into k-mers,
//   2. matched against the index (reads with >= min_kmer_hits seed hits on a
//      consistent diagonal become candidates),
//   3. verified with the two-pass banded Needleman–Wunsch kernel over the
//      implied overlap region (score-only pass + conservative prefilter,
//      then traceback only for surviving candidates — see banded_nw.hpp),
//   4. accepted if the alignment length and identity meet the thresholds,
//      then classified as suffix/prefix overlap or containment.
//
// Two seed backends produce byte-identical overlap sets:
//   * SeedBackend::kKmerHash (default) — 2-bit packed reads + hashed k-mer
//     postings index (kmer_index.hpp), O(1) expected per seed lookup.
//   * SeedBackend::kSuffixArray — the paper's suffix array, O(k log n) per
//     lookup; kept as the reference oracle (tests/seed_equiv_test.cpp).
//
// Subset pairs are independent, which is the parallelism the paper exploits:
// find_overlaps_parallel() distributes pairs over mpr ranks and gathers the
// results at rank 0.
#pragma once

#include <optional>
#include <vector>

#include "align/align_scratch.hpp"
#include "align/kmer_index.hpp"
#include "align/overlap.hpp"
#include "align/suffix_array.hpp"
#include "io/read.hpp"
#include "mpr/runtime.hpp"

namespace focus::align {

/// Which index structure backs k-mer seeding.
enum class SeedBackend {
  kKmerHash,     ///< hashed postings over 2-bit packed k-mers (fast path)
  kSuffixArray,  ///< the paper's suffix array (reference oracle)
};

struct OverlapperConfig {
  /// Seed k-mer length.
  unsigned k = 16;
  /// Minimum seed hits on a consistent diagonal to trigger verification.
  std::size_t min_kmer_hits = 3;
  /// Diagonal clustering tolerance (accounts for small indels).
  std::int64_t diagonal_tolerance = 3;
  /// Seeds occurring more often than this in the index are skipped
  /// (repeat masking).
  std::size_t max_kmer_occurrences = 64;
  /// Paper thresholds: minimum overlap length and identity.
  std::uint32_t min_overlap = 50;
  double min_identity = 0.90;
  /// Banded-NW half band width.
  std::uint32_t band = 8;
  /// Number of read subsets for pairwise parallel alignment.
  std::size_t subsets = 4;
  /// Real host threads for the pooled aligner (find_overlaps): 1 = serial,
  /// 0 = auto (FOCUS_THREADS env var if set, else hardware concurrency).
  /// Output is byte-identical for every value.
  unsigned threads = 0;
  /// Seed index backend. Both backends produce byte-identical overlaps;
  /// the hash backend replaces each O(k log n) suffix-array lookup with an
  /// O(1) expected hash probe.
  SeedBackend seed_backend = SeedBackend::kKmerHash;
};

/// Seed index over one reference subset, backed by either a hashed k-mer
/// postings index or a suffix array (config.seed_backend). For the suffix
/// array, reads are concatenated with a '\x01' separator, which cannot occur
/// inside an ACGT seed, so every seed hit lies within a single read.
class RefIndex {
 public:
  RefIndex(const io::ReadSet& reads, std::vector<ReadId> members,
           const OverlapperConfig& config = {});

  const std::vector<ReadId>& members() const { return members_; }

  SeedBackend backend() const { return backend_; }

  /// Seed length the index was built for (hash backend; the suffix array is
  /// k-agnostic and reports the construction-time config value).
  unsigned seed_k() const { return seed_k_; }

  /// (read-set id, offset within that read) of a concatenated-text position.
  std::pair<ReadId, std::uint32_t> resolve(std::uint32_t text_pos) const;

  /// (member index, offset within that read) of a concatenated-text position.
  std::pair<std::uint32_t, std::uint32_t> resolve_member(
      std::uint32_t text_pos) const;

  /// The suffix array (only when backend() == kSuffixArray).
  const SuffixArray& sa() const;

  /// The hashed k-mer index (only when backend() == kKmerHash).
  const KmerIndex& kmers() const;

  /// Work units spent building the active index.
  double build_work() const;

 private:
  std::vector<ReadId> members_;
  SeedBackend backend_;
  unsigned seed_k_;
  std::vector<std::uint32_t> starts_;  // text start offset per member
  std::optional<SuffixArray> sa_;
  std::optional<KmerIndex> kmers_;
};

/// Finds all accepted overlaps of `query` (with set-id `query_id`) against
/// the indexed reads. Self-matches (query_id == member id) are skipped.
/// `work` (if non-null) accumulates DP/search work units.
std::vector<Overlap> query_overlaps(const io::ReadSet& reads,
                                    const RefIndex& index, ReadId query_id,
                                    const OverlapperConfig& config,
                                    double* work = nullptr);

/// Allocation-lean variant: appends accepted overlaps to `out` and keeps all
/// intermediate state (seed-hit lists, candidate lists, DP buffers) in
/// `scratch`, so driving many queries through one scratch arena performs no
/// per-query heap allocation after warmup. Drivers call this; the returning
/// wrapper above is for one-off queries.
void query_overlaps_into(const io::ReadSet& reads, const RefIndex& index,
                         ReadId query_id, const OverlapperConfig& config,
                         AlignScratch& scratch, std::vector<Overlap>& out,
                         double* work = nullptr);

/// All-pairs overlap detection, single-threaded reference implementation.
std::vector<Overlap> find_overlaps_serial(const io::ReadSet& reads,
                                          const OverlapperConfig& config,
                                          double* work = nullptr);

/// All-pairs overlap detection on the shared-memory work-stealing pool
/// (config.threads wide). Reference subsets are indexed once each in
/// parallel; (i, j) subset pairs are split into per-query-chunk tasks whose
/// results are merged in the serial driver's (j, i, read) order — so the
/// returned overlaps are byte-identical to find_overlaps_serial() for every
/// thread count. `work` accumulates the same work units as the serial
/// driver, summed in a thread-count-independent order.
std::vector<Overlap> find_overlaps(const io::ReadSet& reads,
                                   const OverlapperConfig& config,
                                   double* work = nullptr);

struct ParallelOverlapResult {
  std::vector<Overlap> overlaps;
  mpr::RunStats stats;
};

/// Distributes subset pairs across `nranks` mpr ranks; rank 0 gathers and
/// deduplicates. Produces the same overlap set as find_overlaps_serial.
ParallelOverlapResult find_overlaps_parallel(const io::ReadSet& reads,
                                             const OverlapperConfig& config,
                                             int nranks,
                                             mpr::CostModel cost = {});

/// Removes duplicate records of the same read pair, keeping the longest
/// (then highest-identity) overlap, all in canonical orientation.
std::vector<Overlap> dedupe_overlaps(std::vector<Overlap> overlaps);

}  // namespace focus::align
