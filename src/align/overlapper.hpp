// Read overlap detection (paper §II-B, "Parallel Read Alignment").
//
// The read set is split into subsets; for every ordered-pair-free combination
// of subsets (i, j), i <= j, the reference subset j is indexed and every
// query read of subset i is:
//   1. decomposed into k-mers,
//   2. matched against the index (reads with >= min_kmer_hits seed hits on a
//      consistent diagonal become candidates),
//   3. verified with the two-pass banded Needleman–Wunsch kernel over the
//      implied overlap region (score-only pass + conservative prefilter,
//      then traceback only for surviving candidates — see banded_nw.hpp),
//   4. accepted if the alignment length and identity meet the thresholds,
//      then classified as suffix/prefix overlap or containment.
//
// Two seed backends produce byte-identical overlap sets:
//   * SeedBackend::kKmerHash (default) — 2-bit packed reads + hashed k-mer
//     postings index (kmer_index.hpp), O(1) expected per seed lookup.
//   * SeedBackend::kSuffixArray — the paper's suffix array, O(k log n) per
//     lookup; kept as the reference oracle (tests/seed_equiv_test.cpp).
//
// Subset pairs are independent, which is the parallelism the paper exploits:
// find_overlaps_parallel() distributes pairs over mpr ranks and gathers the
// results at rank 0.
//
// Pair generation itself is a pluggable strategy (OverlapperConfig::strategy):
//   * SeedStrategy::kAllPairs — the paper's O(s²) subset-pair enumeration
//     described above.
//   * SeedStrategy::kDistributedIndex — one k-mer index sharded by key hash
//     across mpr ranks (shard_index.hpp, DESIGN.md §6c): postings and query
//     probes are routed to the key's owner in batched all-to-all rounds,
//     candidate pairs to the rank owning the reference read for banded-NW
//     verification, and rank 0 merges through the same dedupe_overlaps()
//     total order — so the output is byte-identical to the all-pairs path
//     while each read is indexed and each query is seeded exactly once.
#pragma once

#include <optional>
#include <vector>

#include "align/align_scratch.hpp"
#include "align/kmer_index.hpp"
#include "align/overlap.hpp"
#include "align/shard_index.hpp"
#include "align/suffix_array.hpp"
#include "io/read.hpp"
#include "mpr/runtime.hpp"

namespace focus {
struct EnvSnapshot;
}

namespace focus::align {

/// Which index structure backs k-mer seeding.
enum class SeedBackend {
  kKmerHash,     ///< hashed postings over 2-bit packed k-mers (fast path)
  kSuffixArray,  ///< the paper's suffix array (reference oracle)
};

/// How candidate (query, reference) pairs are generated.
enum class SeedStrategy {
  kAllPairs,          ///< per-subset-pair indexing, O(s²) subset pairs
  kDistributedIndex,  ///< mpr-sharded k-mer index, batched lookup rounds
};

/// FOCUS_SEED_STRATEGY env override: "all-pairs"/"allpairs" or
/// "distributed"/"distributed-index"; unset/empty keeps the default
/// (all-pairs). Any other value throws — a typo must not silently fall back.
SeedStrategy seed_strategy_from_env();

/// Same, resolved against an already-captured environment snapshot
/// (FocusConfig takes one snapshot and derives every env default from it).
SeedStrategy seed_strategy_from_env(const EnvSnapshot& env);

struct OverlapperConfig {
  /// Seed k-mer length.
  unsigned k = 16;
  /// Minimum seed hits on a consistent diagonal to trigger verification.
  std::size_t min_kmer_hits = 3;
  /// Diagonal clustering tolerance (accounts for small indels).
  std::int64_t diagonal_tolerance = 3;
  /// Seeds occurring more often than this in the index are skipped
  /// (repeat masking).
  std::size_t max_kmer_occurrences = 64;
  /// Paper thresholds: minimum overlap length and identity.
  std::uint32_t min_overlap = 50;
  double min_identity = 0.90;
  /// Banded-NW half band width.
  std::uint32_t band = 8;
  /// Number of read subsets for pairwise parallel alignment.
  std::size_t subsets = 4;
  /// Real host threads for the pooled aligner (find_overlaps): 1 = serial,
  /// 0 = auto (FOCUS_THREADS env var if set, else hardware concurrency).
  /// Output is byte-identical for every value.
  unsigned threads = 0;
  /// Seed index backend. Both backends produce byte-identical overlaps;
  /// the hash backend replaces each O(k log n) suffix-array lookup with an
  /// O(1) expected hash probe.
  SeedBackend seed_backend = SeedBackend::kKmerHash;
  /// Candidate-pair generation strategy (distributed drivers only; the
  /// serial and pooled all-pairs entry points ignore it). Both strategies
  /// produce byte-identical overlap sets. Defaults to the FOCUS_SEED_STRATEGY
  /// env override, else all-pairs.
  SeedStrategy strategy = seed_strategy_from_env();
};

/// Seed index over one reference subset, backed by either a hashed k-mer
/// postings index or a suffix array (config.seed_backend). For the suffix
/// array, reads are concatenated with a '\x01' separator, which cannot occur
/// inside an ACGT seed, so every seed hit lies within a single read.
class RefIndex {
 public:
  RefIndex(const io::ReadSet& reads, std::vector<ReadId> members,
           const OverlapperConfig& config = {});

  const std::vector<ReadId>& members() const { return members_; }

  SeedBackend backend() const { return backend_; }

  /// Seed length the index was built for (hash backend; the suffix array is
  /// k-agnostic and reports the construction-time config value).
  unsigned seed_k() const { return seed_k_; }

  /// (read-set id, offset within that read) of a concatenated-text position.
  std::pair<ReadId, std::uint32_t> resolve(std::uint32_t text_pos) const;

  /// (member index, offset within that read) of a concatenated-text position.
  std::pair<std::uint32_t, std::uint32_t> resolve_member(
      std::uint32_t text_pos) const;

  /// The suffix array (only when backend() == kSuffixArray).
  const SuffixArray& sa() const;

  /// The hashed k-mer index (only when backend() == kKmerHash).
  const KmerIndex& kmers() const;

  /// Work units spent building the active index.
  double build_work() const;

 private:
  std::vector<ReadId> members_;
  SeedBackend backend_;
  unsigned seed_k_;
  std::vector<std::uint32_t> starts_;  // text start offset per member
  std::optional<SuffixArray> sa_;
  std::optional<KmerIndex> kmers_;
};

/// Finds all accepted overlaps of `query` (with set-id `query_id`) against
/// the indexed reads. Self-matches (query_id == member id) are skipped.
/// `work` (if non-null) accumulates DP/search work units.
std::vector<Overlap> query_overlaps(const io::ReadSet& reads,
                                    const RefIndex& index, ReadId query_id,
                                    const OverlapperConfig& config,
                                    double* work = nullptr);

/// Allocation-lean variant: appends accepted overlaps to `out` and keeps all
/// intermediate state (seed-hit lists, candidate lists, DP buffers) in
/// `scratch`, so driving many queries through one scratch arena performs no
/// per-query heap allocation after warmup. Drivers call this; the returning
/// wrapper above is for one-off queries.
void query_overlaps_into(const io::ReadSet& reads, const RefIndex& index,
                         ReadId query_id, const OverlapperConfig& config,
                         AlignScratch& scratch, std::vector<Overlap>& out,
                         double* work = nullptr);

/// All-pairs overlap detection, single-threaded reference implementation.
std::vector<Overlap> find_overlaps_serial(const io::ReadSet& reads,
                                          const OverlapperConfig& config,
                                          double* work = nullptr);

/// All-pairs overlap detection on the shared-memory work-stealing pool
/// (config.threads wide). Reference subsets are indexed once each in
/// parallel; (i, j) subset pairs are split into per-query-chunk tasks whose
/// results are merged in the serial driver's (j, i, read) order — so the
/// returned overlaps are byte-identical to find_overlaps_serial() for every
/// thread count. `work` accumulates the same work units as the serial
/// driver, summed in a thread-count-independent order.
std::vector<Overlap> find_overlaps(const io::ReadSet& reads,
                                   const OverlapperConfig& config,
                                   double* work = nullptr);

struct ParallelOverlapResult {
  std::vector<Overlap> overlaps;
  mpr::RunStats stats;
};

/// Distributes work across `nranks` mpr ranks; rank 0 gathers and
/// deduplicates. Produces the same overlap set as find_overlaps_serial.
/// Dispatches on config.strategy: all-pairs stripes subset pairs over ranks;
/// distributed-index runs the sharded protocol (find_overlaps_sharded).
ParallelOverlapResult find_overlaps_parallel(const io::ReadSet& reads,
                                             const OverlapperConfig& config,
                                             int nranks,
                                             mpr::CostModel cost = {});

/// Distributed-index overlap discovery on the mpr runtime: each rank owns the
/// k-mer shard hash(key) % nranks and a contiguous stripe of reads. Three
/// batched all-to-all rounds (postings -> shard build, query probes -> seed
/// hits, hits -> verification at the reference owner's rank) followed by a
/// gather at rank 0 and dedupe_overlaps(). Byte-identical to
/// find_overlaps_serial for every nranks (tests/overlap_dist_test.cpp).
ParallelOverlapResult find_overlaps_sharded(const io::ReadSet& reads,
                                            const OverlapperConfig& config,
                                            int nranks,
                                            mpr::CostModel cost = {});

/// Single-threaded reference of the distributed-index pipeline: one shard
/// over all reads, every read queried once, same verification order as the
/// sharded protocol. Exists so the equivalence tests can pin the strategy's
/// semantics without spinning up the runtime.
std::vector<Overlap> find_overlaps_distributed_serial(
    const io::ReadSet& reads, const OverlapperConfig& config,
    double* work = nullptr);

/// Verifies a batch of raw seed hits: sorts by (query, ref, diag), groups by
/// (query, ref) pair, runs consensus-diagonal + banded-NW acceptance per
/// group — the same per-pair decision the all-pairs query loop makes — and
/// appends accepted overlaps to `out`. Duplicate candidate pairs from
/// multi-seed hits collapse into one group, hence exactly one verification.
void verify_seed_hits(const io::ReadSet& reads, std::vector<SeedHit> hits,
                      const OverlapperConfig& config, std::vector<Overlap>& out,
                      double* work = nullptr);

/// Runs the distributed-index seeding + verification for query reads
/// [q_begin, q_end) against a shard holding ALL postings (single-shard
/// layout). The unit of replay for the fault-tolerant overlap driver
/// (dist/parallel.cpp): pure in its inputs, so a re-executed block
/// reproduces its records exactly.
void distributed_block_overlaps(const io::ReadSet& reads,
                                const KmerShard& shard,
                                const SubsetRanges& subsets, ReadId q_begin,
                                ReadId q_end, const OverlapperConfig& config,
                                std::vector<Overlap>& out,
                                double* work = nullptr);

/// Removes duplicate records of the same read pair, keeping the longest
/// (then highest-identity) overlap, all in canonical orientation.
std::vector<Overlap> dedupe_overlaps(std::vector<Overlap> overlaps);

}  // namespace focus::align
