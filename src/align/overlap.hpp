// Overlap records: the edges-to-be of the overlap graph (paper §II-B/§II-C).
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/types.hpp"

namespace focus::align {

/// How two reads overlap, from the perspective of (query, ref).
enum class OverlapKind : std::uint8_t {
  /// Suffix of the query aligns the prefix of the ref: directed edge q -> r.
  kSuffixPrefix = 0,
  /// Prefix of the query aligns the suffix of the ref: directed edge r -> q.
  kPrefixSuffix = 1,
  /// Query is contained within the ref.
  kQueryContained = 2,
  /// Ref is contained within the query.
  kRefContained = 3,
};

/// A verified overlap between two reads. Trivially copyable by design — the
/// parallel aligner ships these between ranks as raw byte payloads.
struct Overlap {
  ReadId query = kInvalidRead;
  ReadId ref = kInvalidRead;
  /// Alignment length in columns (the paper's edge weight).
  std::uint32_t length = 0;
  /// Fraction of alignment columns that match.
  float identity = 0.0f;
  OverlapKind kind = OverlapKind::kSuffixPrefix;
};

static_assert(std::is_trivially_copyable_v<Overlap>);

/// The same overlap described from the other read's perspective.
Overlap flipped(const Overlap& o);

/// Canonical form: query id <= ref id (flipping if needed). Used for
/// symmetric deduplication.
Overlap canonicalized(const Overlap& o);

}  // namespace focus::align
