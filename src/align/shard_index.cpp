#include "align/shard_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/packed_seq.hpp"

namespace focus::align {

SubsetRanges::SubsetRanges(const std::vector<std::vector<ReadId>>& subsets) {
  FOCUS_CHECK(!subsets.empty(), "need at least one subset");
  bounds_.reserve(subsets.size() + 1);
  bounds_.push_back(0);
  for (const auto& subset : subsets) {
    ReadId next = bounds_.back();
    for (const ReadId id : subset) {
      FOCUS_CHECK(id == next, "subsets must be contiguous ascending ranges");
      ++next;
    }
    bounds_.push_back(next);
  }
}

std::uint32_t SubsetRanges::subset_of(ReadId id) const {
  FOCUS_ASSERT(id < total_reads(), "read id outside every subset");
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), id) - 1;
  return static_cast<std::uint32_t>(it - bounds_.begin());
}

int shard_owner(std::uint64_t key, int nranks) {
  FOCUS_ASSERT(nranks >= 1, "shard_owner needs at least one rank");
  return static_cast<int>(kmer_hash(key) %
                          static_cast<std::uint64_t>(nranks));
}

namespace {

/// Shared scan shape of both extractors: visits every clean k-mer of reads
/// [begin, end) with its (read, pos, key) and charges one unit per base.
template <typename Emit>
void for_each_clean_kmer(const io::ReadSet& reads, ReadId begin, ReadId end,
                         unsigned k, double* work, Emit&& emit) {
  dna::PackedSeq packed;
  for (ReadId id = begin; id < end; ++id) {
    const std::string& seq = reads[id].seq;
    if (work != nullptr) *work += static_cast<double>(seq.size());
    if (seq.size() < k) continue;
    packed.assign(seq);
    std::uint64_t key;
    for (std::size_t pos = 0; pos + k <= seq.size(); ++pos) {
      if (!packed.kmer_at(pos, k, key)) continue;
      emit(id, static_cast<std::uint32_t>(pos), key);
    }
  }
}

}  // namespace

std::vector<std::vector<ShardPosting>> extract_shard_postings(
    const io::ReadSet& reads, ReadId begin, ReadId end, unsigned k,
    int nranks, double* work) {
  std::vector<std::vector<ShardPosting>> out(
      static_cast<std::size_t>(nranks));
  for_each_clean_kmer(reads, begin, end, k, work,
                      [&](ReadId id, std::uint32_t pos, std::uint64_t key) {
                        out[static_cast<std::size_t>(shard_owner(key, nranks))]
                            .push_back({key, id, pos});
                      });
  return out;
}

std::vector<std::vector<QueryProbe>> extract_query_probes(
    const io::ReadSet& reads, ReadId begin, ReadId end, unsigned k,
    int nranks, double* work) {
  std::vector<std::vector<QueryProbe>> out(static_cast<std::size_t>(nranks));
  for_each_clean_kmer(reads, begin, end, k, work,
                      [&](ReadId id, std::uint32_t pos, std::uint64_t key) {
                        out[static_cast<std::size_t>(shard_owner(key, nranks))]
                            .push_back({key, id, pos});
                      });
  return out;
}

KmerShard::KmerShard(std::vector<ShardPosting> postings, unsigned k)
    : index_(
          [&] {
            std::vector<KmerIndex::Entry> entries;
            entries.reserve(postings.size());
            for (const ShardPosting& p : postings) {
              entries.push_back({p.key, p.ref, p.pos});
            }
            return entries;
          }(),
          k) {}

void KmerShard::collect_hits(const QueryProbe& probe,
                             const SubsetRanges& subsets, std::size_t max_occ,
                             std::vector<SeedHit>& out, double* work) const {
  if (work != nullptr) *work += 1.0;  // one O(1) expected hash probe
  const auto [first, last] = index_.find(probe.key);
  if (first == last) return;

  // Postings are sorted by (ref, pos) and subsets are contiguous ReadId
  // ranges, so each subset's postings form one subrange. Walk the subranges
  // at or above the query's subset, applying the all-pairs repeat mask per
  // subset: this key is skipped for a subset iff that subset alone holds
  // more than max_occ occurrences — exactly what the per-subset RefIndex of
  // the all-pairs path would decide.
  const std::uint32_t query_subset = subsets.subset_of(probe.query);
  const KmerIndex::Posting* p = std::lower_bound(
      first, last, subsets.begin(query_subset),
      [](const KmerIndex::Posting& a, ReadId bound) { return a.member < bound; });
  while (p != last) {
    const std::uint32_t s = subsets.subset_of(p->member);
    const KmerIndex::Posting* sub_end = std::lower_bound(
        p, last, subsets.end(s),
        [](const KmerIndex::Posting& a, ReadId bound) {
          return a.member < bound;
        });
    if (static_cast<std::size_t>(sub_end - p) <= max_occ) {
      for (; p != sub_end; ++p) {
        if (p->member == probe.query) continue;  // self-hit
        out.push_back({probe.query, p->member,
                       static_cast<std::int64_t>(probe.qpos) -
                           static_cast<std::int64_t>(p->pos)});
        if (work != nullptr) *work += 1.0;
      }
    }
    p = sub_end;
  }
}

}  // namespace focus::align
