#include "align/kmer_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/packed_seq.hpp"

namespace focus::align {

// splitmix64 finalizer: a cheap, well-mixed hash for packed k-mer keys.
std::uint64_t kmer_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

KmerIndex::KmerIndex(const io::ReadSet& reads,
                     const std::vector<ReadId>& members, unsigned k)
    : k_(k) {
  FOCUS_CHECK(k >= 1 && k <= 32, "KmerIndex requires 1 <= k <= 32");
  FOCUS_CHECK(members.size() <= std::numeric_limits<std::uint32_t>::max(),
              "too many members for 32-bit posting indices");

  std::vector<Entry> entries;
  std::size_t total_bases = 0;
  for (const ReadId id : members) total_bases += reads[id].seq.size();
  entries.reserve(total_bases);

  dna::PackedSeq packed;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const std::string& seq = reads[members[m]].seq;
    if (seq.size() < k) continue;
    packed.assign(seq);
    std::uint64_t key;
    for (std::size_t pos = 0; pos + k <= seq.size(); ++pos) {
      if (!packed.kmer_at(pos, k, key)) continue;
      entries.push_back({key, static_cast<std::uint32_t>(m),
                         static_cast<std::uint32_t>(pos)});
    }
  }

  build(std::move(entries));
  build_work_ += static_cast<double>(total_bases);  // packing + extraction
}

KmerIndex::KmerIndex(std::vector<Entry> entries, unsigned k) : k_(k) {
  FOCUS_CHECK(k >= 1 && k <= 32, "KmerIndex requires 1 <= k <= 32");
  build(std::move(entries));
}

void KmerIndex::build(std::vector<Entry> entries) {
  // (key, member, pos) order: deterministic bucket iteration, postings within
  // a bucket in member order then position order.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.member != b.member) return a.member < b.member;
              return a.pos < b.pos;
            });

  postings_.resize(entries.size());
  distinct_ = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    postings_[i] = {entries[i].member, entries[i].pos};
    if (i == 0 || entries[i].key != entries[i - 1].key) ++distinct_;
  }

  if (distinct_ > 0) {
    table_.assign(std::max<std::size_t>(2, next_pow2(distinct_ * 2)), Slot{});
    table_mask_ = table_.size() - 1;
    std::size_t bucket_begin = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const bool last_of_key =
          i + 1 == entries.size() || entries[i + 1].key != entries[i].key;
      if (!last_of_key) continue;
      std::size_t slot = kmer_hash(entries[i].key) & table_mask_;
      while (table_[slot].count != 0) slot = (slot + 1) & table_mask_;
      table_[slot].key = entries[i].key;
      table_[slot].begin = static_cast<std::uint32_t>(bucket_begin);
      table_[slot].count = static_cast<std::uint32_t>(i + 1 - bucket_begin);
      bucket_begin = i + 1;
    }
  }

  // Build cost: O(n log n) posting sort + O(d) table fill — the terms a real
  // implementation pays. The read-set constructor adds its extraction scan.
  const double n = static_cast<double>(entries.size());
  build_work_ = n * std::log2(n + 2.0) + static_cast<double>(distinct_);
}

std::pair<const KmerIndex::Posting*, const KmerIndex::Posting*> KmerIndex::find(
    std::uint64_t key) const {
  if (table_.empty()) return {nullptr, nullptr};
  std::size_t slot = kmer_hash(key) & table_mask_;
  while (table_[slot].count != 0) {
    if (table_[slot].key == key) {
      const Posting* first = postings_.data() + table_[slot].begin;
      return {first, first + table_[slot].count};
    }
    slot = (slot + 1) & table_mask_;
  }
  return {nullptr, nullptr};
}

}  // namespace focus::align
