#include "align/banded_nw.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace focus::align {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 2;

enum Move : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

}  // namespace

double banded_align_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band) {
  const std::size_t diff =
      len_a > len_b ? len_a - len_b : len_b - len_a;
  return static_cast<double>((len_a + 1)) *
         static_cast<double>(2 * band + diff + 1);
}

AlignmentResult banded_global_align(std::string_view a, std::string_view b,
                                    std::uint32_t band,
                                    const AlignScoring& scoring) {
  const auto n = static_cast<std::int64_t>(a.size());
  const auto m = static_cast<std::int64_t>(b.size());
  const std::int64_t skew = m - n;
  // Diagonal band: j - i in [dlo, dhi]; skew-adjusted so the (0,0) and (n,m)
  // corners are always inside the band.
  const std::int64_t dlo = std::min<std::int64_t>(0, skew) - band;
  const std::int64_t dhi = std::max<std::int64_t>(0, skew) + band;
  const std::int64_t width = dhi - dlo + 1;

  std::vector<std::int32_t> prev(static_cast<std::size_t>(width), kNegInf);
  std::vector<std::int32_t> cur(static_cast<std::size_t>(width), kNegInf);
  // moves[(i * width) + (j - (i + dlo))]
  std::vector<std::uint8_t> moves(
      static_cast<std::size_t>((n + 1) * width), kStop);

  for (std::int64_t i = 0; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kNegInf);
    const std::int64_t jlo = std::max<std::int64_t>(0, i + dlo);
    const std::int64_t jhi = std::min<std::int64_t>(m, i + dhi);
    for (std::int64_t j = jlo; j <= jhi; ++j) {
      const std::int64_t idx = j - (i + dlo);
      std::int32_t best = kNegInf;
      std::uint8_t move = kStop;
      if (i == 0 && j == 0) {
        best = 0;
      } else {
        if (i > 0 && j > 0) {
          const std::int64_t pidx = (j - 1) - (i - 1 + dlo);
          if (pidx >= 0 && pidx < width &&
              prev[static_cast<std::size_t>(pidx)] > kNegInf) {
            const bool is_match = a[static_cast<std::size_t>(i - 1)] ==
                                  b[static_cast<std::size_t>(j - 1)];
            const std::int32_t s =
                prev[static_cast<std::size_t>(pidx)] +
                (is_match ? scoring.match : scoring.mismatch);
            if (s > best) {
              best = s;
              move = kDiag;
            }
          }
        }
        if (i > 0) {
          const std::int64_t pidx = j - (i - 1 + dlo);
          if (pidx >= 0 && pidx < width &&
              prev[static_cast<std::size_t>(pidx)] > kNegInf) {
            const std::int32_t s =
                prev[static_cast<std::size_t>(pidx)] + scoring.gap;
            if (s > best) {
              best = s;
              move = kUp;
            }
          }
        }
        if (j > jlo && cur[static_cast<std::size_t>(idx - 1)] > kNegInf) {
          const std::int32_t s =
              cur[static_cast<std::size_t>(idx - 1)] + scoring.gap;
          if (s > best) {
            best = s;
            move = kLeft;
          }
        }
      }
      cur[static_cast<std::size_t>(idx)] = best;
      moves[static_cast<std::size_t>(i * width + idx)] = move;
    }
    prev.swap(cur);
  }

  AlignmentResult result;
  const std::int64_t final_idx = m - (n + dlo);
  FOCUS_ASSERT(final_idx >= 0 && final_idx < width,
               "band does not contain the terminal corner");
  const std::int32_t final_score = prev[static_cast<std::size_t>(final_idx)];
  if (final_score <= kNegInf) return result;  // unreachable within band

  result.valid = true;
  result.score = final_score;

  // Traceback (runs from the alignment's end to its start).
  bool in_tail_run = true;
  std::uint32_t last_gap_run = 0;
  std::int64_t i = n, j = m;
  while (i != 0 || j != 0) {
    const std::int64_t idx = j - (i + dlo);
    const std::uint8_t move = moves[static_cast<std::size_t>(i * width + idx)];
    switch (move) {
      case kDiag:
        if (a[static_cast<std::size_t>(i - 1)] ==
            b[static_cast<std::size_t>(j - 1)]) {
          ++result.matches;
        } else {
          ++result.mismatches;
        }
        --i;
        --j;
        in_tail_run = false;
        last_gap_run = 0;
        break;
      case kUp:
      case kLeft:
        ++result.gaps;
        if (in_tail_run) {
          ++result.tail_gaps;
        } else {
          ++last_gap_run;
        }
        if (move == kUp) {
          --i;
        } else {
          --j;
        }
        break;
      case kStop:
      default:
        FOCUS_ASSERT(false, "broken traceback in banded alignment");
    }
    ++result.columns;
  }
  // Whatever gap run was still open when traceback reached (0,0) sits at the
  // alignment's start.
  result.lead_gaps = in_tail_run ? 0 : last_gap_run;
  return result;
}

}  // namespace focus::align
