#include "align/banded_nw.hpp"

#include <algorithm>
#include <limits>

#include "align/align_scratch.hpp"
#include "common/error.hpp"

namespace focus::align {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 2;
// Cells whose only predecessors are out-of-band carry kNegInf plus a few
// row-local additions; anything below this threshold is unreachable. Real
// alignment scores are bounded below by gap * (len_a + len_b), far above it.
constexpr std::int32_t kUnreachable = kNegInf / 2;

enum Move : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

// Skew-adjusted diagonal band: j - i in [dlo, dhi], chosen so the (0,0) and
// (n,m) corners are always inside the band.
struct BandGeometry {
  std::int64_t n, m, dlo, dhi, width;
};

BandGeometry band_geometry(std::string_view a, std::string_view b,
                           std::uint32_t band) {
  BandGeometry g;
  g.n = static_cast<std::int64_t>(a.size());
  g.m = static_cast<std::int64_t>(b.size());
  const std::int64_t skew = g.m - g.n;
  g.dlo = std::min<std::int64_t>(0, skew) - band;
  g.dhi = std::max<std::int64_t>(0, skew) + band;
  g.width = g.dhi - g.dlo + 1;
  return g;
}

// Both row buffers carry one kNegInf sentinel on each side, so the three
// predecessor reads need no bounds or reachability branches:
//   diag (i-1, j-1) -> prev[idx],  up (i-1, j) -> prev[idx+1],
//   left (i, j-1)   -> cur[idx-1]
// with idx = j - (i + dlo). Out-of-band predecessors read the sentinel (or a
// cell left at kNegInf by the per-row fill) and lose every max() against a
// reachable path — scores of reachable cells are identical to the guarded
// formulation, which is what the traceback and callers observe.
struct Rows {
  std::int32_t* prev;  // points one past the leading sentinel
  std::int32_t* cur;
};

Rows prepare_rows(AlignScratch& scratch, std::int64_t width) {
  const auto padded = static_cast<std::size_t>(width) + 2;
  scratch.nw_prev.assign(padded, kNegInf);
  scratch.nw_cur.assign(padded, kNegInf);
  return {scratch.nw_prev.data() + 1, scratch.nw_cur.data() + 1};
}

}  // namespace

double banded_align_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band) {
  const std::size_t diff =
      len_a > len_b ? len_a - len_b : len_b - len_a;
  return static_cast<double>((len_a + 1)) *
         static_cast<double>(2 * band + diff + 1);
}

double banded_score_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band) {
  // Same cell count as the full pass; the score pass fills every band cell
  // once (without recording moves).
  return banded_align_work(len_a, len_b, band);
}

BandScore banded_score_only(std::string_view a, std::string_view b,
                            std::uint32_t band, const AlignScoring& scoring) {
  const BandGeometry g = band_geometry(a, b, band);
  const std::int64_t n = g.n, m = g.m, dlo = g.dlo, width = g.width;
  AlignScratch& scratch = tls_align_scratch();
  auto [pp, cp] = prepare_rows(scratch, width);

  // Row 0: only left-gap moves are possible.
  const std::int64_t jhi0 = std::min<std::int64_t>(m, g.dhi);
  for (std::int64_t j = 0; j <= jhi0; ++j) {
    pp[j - dlo] = static_cast<std::int32_t>(j) * scoring.gap;
  }

  for (std::int64_t i = 1; i <= n; ++i) {
    std::fill(cp, cp + width, kNegInf);
    const std::int64_t base = i + dlo;  // j = base + idx
    std::int64_t jlo = std::max<std::int64_t>(0, base);
    const std::int64_t jhi = std::min<std::int64_t>(m, i + g.dhi);
    if (jlo == 0) {
      // j = 0 has no diagonal or left predecessor (b[-1] does not exist).
      cp[-base] = pp[-base + 1] + scoring.gap;
      jlo = 1;
    }
    const char ai = a[static_cast<std::size_t>(i - 1)];
    for (std::int64_t j = jlo; j <= jhi; ++j) {
      const std::int64_t idx = j - base;
      const std::int32_t diag =
          pp[idx] + (ai == b[static_cast<std::size_t>(j - 1)]
                         ? scoring.match
                         : scoring.mismatch);
      const std::int32_t up = pp[idx + 1] + scoring.gap;
      const std::int32_t left = cp[idx - 1] + scoring.gap;
      std::int32_t best = diag;
      if (up > best) best = up;
      if (left > best) best = left;
      cp[idx] = best;
    }
    std::swap(pp, cp);
  }

  BandScore result;
  const std::int64_t final_idx = m - (n + dlo);
  FOCUS_ASSERT(final_idx >= 0 && final_idx < width,
               "band does not contain the terminal corner");
  const std::int32_t final_score = pp[final_idx];
  if (final_score < kUnreachable) return result;  // unreachable within band
  result.valid = true;
  result.score = final_score;
  return result;
}

bool score_may_pass(std::int32_t score, std::size_t len_a, std::size_t len_b,
                    std::uint32_t min_columns, double min_identity,
                    const AlignScoring& scoring) {
  // For a global alignment with M matches, X mismatches, and G gap columns:
  //   M + X + gaps_into_a = len_a,  M + X + gaps_into_b = len_b
  //   => G = T - 2M - 2X  with  T = len_a + len_b
  //   => score = A*M + B*X + gap*T  with  A = match - 2*gap, B = mismatch -
  //      2*gap
  // so U := score - gap*T = A*M + B*X, and columns = T - M - X. With
  // A >= B >= 0 every alignment achieving this score satisfies
  // M + X >= U / A, hence columns <= T - U/A; and when U <= B*T the ratio
  // M / columns is maximized at X = 0, giving identity <= U / (A*T - U).
  const auto T = static_cast<std::int64_t>(len_a + len_b);
  const std::int64_t A = static_cast<std::int64_t>(scoring.match) -
                         2 * static_cast<std::int64_t>(scoring.gap);
  const std::int64_t B = static_cast<std::int64_t>(scoring.mismatch) -
                         2 * static_cast<std::int64_t>(scoring.gap);
  if (A <= 0 || B < 0 || scoring.mismatch > scoring.match) {
    return true;  // bounds unsound for this scoring; abstain
  }
  const std::int64_t U =
      static_cast<std::int64_t>(score) -
      static_cast<std::int64_t>(scoring.gap) * T;
  if (U < 0) return true;  // impossible for a real alignment; abstain

  // columns <= T - U/A < min_columns  <=>  A*(T - min_columns) < U.
  if (A * (T - static_cast<std::int64_t>(min_columns)) < U) return false;

  if (U <= B * T) {
    // identity <= U / (A*T - U).
    const std::int64_t denom = A * T - U;
    if (denom <= 0) return false;  // columns bound <= 0
    // Tiny slack keeps float rounding from rejecting a boundary candidate.
    if (static_cast<double>(U) / static_cast<double>(denom) + 1e-9 <
        min_identity) {
      return false;
    }
  }
  return true;
}

AlignmentResult banded_global_align(std::string_view a, std::string_view b,
                                    std::uint32_t band,
                                    const AlignScoring& scoring) {
  const BandGeometry g = band_geometry(a, b, band);
  const std::int64_t n = g.n, m = g.m, dlo = g.dlo, width = g.width;

  AlignScratch& scratch = tls_align_scratch();
  auto [pp, cp] = prepare_rows(scratch, width);
  auto& moves = scratch.nw_moves;
  // moves[(i * width) + (j - (i + dlo))]. Stale contents from earlier calls
  // are harmless: the row loop writes every in-band cell before the
  // traceback (which only visits in-band cells) reads it.
  if (moves.size() < static_cast<std::size_t>((n + 1) * width)) {
    moves.resize(static_cast<std::size_t>((n + 1) * width));
  }

  // Row 0: only left-gap moves are possible.
  const std::int64_t jhi0 = std::min<std::int64_t>(m, g.dhi);
  for (std::int64_t j = 0; j <= jhi0; ++j) {
    pp[j - dlo] = static_cast<std::int32_t>(j) * scoring.gap;
    moves[static_cast<std::size_t>(j - dlo)] = j == 0 ? kStop : kLeft;
  }

  for (std::int64_t i = 1; i <= n; ++i) {
    std::fill(cp, cp + width, kNegInf);
    const std::int64_t base = i + dlo;  // j = base + idx
    std::int64_t jlo = std::max<std::int64_t>(0, base);
    const std::int64_t jhi = std::min<std::int64_t>(m, i + g.dhi);
    std::uint8_t* mrow = moves.data() + static_cast<std::size_t>(i * width);
    if (jlo == 0) {
      // j = 0 has no diagonal or left predecessor (b[-1] does not exist).
      cp[-base] = pp[-base + 1] + scoring.gap;
      mrow[-base] = kUp;
      jlo = 1;
    }
    const char ai = a[static_cast<std::size_t>(i - 1)];
    for (std::int64_t j = jlo; j <= jhi; ++j) {
      const std::int64_t idx = j - base;
      const std::int32_t diag =
          pp[idx] + (ai == b[static_cast<std::size_t>(j - 1)]
                         ? scoring.match
                         : scoring.mismatch);
      const std::int32_t up = pp[idx + 1] + scoring.gap;
      const std::int32_t left = cp[idx - 1] + scoring.gap;
      // Tie priority diag > up > left, matching the guarded formulation.
      std::int32_t best = diag;
      std::uint8_t move = kDiag;
      if (up > best) {
        best = up;
        move = kUp;
      }
      if (left > best) {
        best = left;
        move = kLeft;
      }
      cp[idx] = best;
      mrow[idx] = move;
    }
    std::swap(pp, cp);
  }

  AlignmentResult result;
  const std::int64_t final_idx = m - (n + dlo);
  FOCUS_ASSERT(final_idx >= 0 && final_idx < width,
               "band does not contain the terminal corner");
  const std::int32_t final_score = pp[final_idx];
  if (final_score < kUnreachable) return result;  // unreachable within band

  result.valid = true;
  result.score = final_score;

  // Traceback (runs from the alignment's end to its start).
  bool in_tail_run = true;
  std::uint32_t last_gap_run = 0;
  std::int64_t i = n, j = m;
  while (i != 0 || j != 0) {
    const std::int64_t idx = j - (i + dlo);
    const std::uint8_t move = moves[static_cast<std::size_t>(i * width + idx)];
    switch (move) {
      case kDiag:
        if (a[static_cast<std::size_t>(i - 1)] ==
            b[static_cast<std::size_t>(j - 1)]) {
          ++result.matches;
        } else {
          ++result.mismatches;
        }
        --i;
        --j;
        in_tail_run = false;
        last_gap_run = 0;
        break;
      case kUp:
      case kLeft:
        ++result.gaps;
        if (in_tail_run) {
          ++result.tail_gaps;
        } else {
          ++last_gap_run;
        }
        if (move == kUp) {
          --i;
        } else {
          --j;
        }
        break;
      case kStop:
      default:
        FOCUS_ASSERT(false, "broken traceback in banded alignment");
    }
    ++result.columns;
  }
  // Whatever gap run was still open when traceback reached (0,0) sits at the
  // alignment's start.
  result.lead_gaps = in_tail_run ? 0 : last_gap_run;
  return result;
}

}  // namespace focus::align
