#include "align/overlapper.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "align/banded_nw.hpp"
#include "common/dna.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "io/preprocess.hpp"
#include "mpr/rounds.hpp"

namespace focus::align {

namespace {

constexpr char kSeparator = '\x01';

}  // namespace

SeedStrategy seed_strategy_from_env() {
  return seed_strategy_from_env(EnvSnapshot::capture());
}

SeedStrategy seed_strategy_from_env(const EnvSnapshot& env) {
  if (!env.seed_strategy.has_value() || env.seed_strategy->empty()) {
    return SeedStrategy::kAllPairs;
  }
  const std::string_view v(*env.seed_strategy);
  if (v == "all-pairs" || v == "allpairs") return SeedStrategy::kAllPairs;
  if (v == "distributed" || v == "distributed-index") {
    return SeedStrategy::kDistributedIndex;
  }
  FOCUS_THROW("FOCUS_SEED_STRATEGY must be 'all-pairs' or 'distributed', got '" +
              std::string(v) + "'");
}

RefIndex::RefIndex(const io::ReadSet& reads, std::vector<ReadId> members,
                   const OverlapperConfig& config)
    : members_(std::move(members)),
      backend_(config.seed_backend),
      seed_k_(config.k) {
  starts_.reserve(members_.size());
  std::uint32_t offset = 0;
  for (const ReadId id : members_) {
    starts_.push_back(offset);
    offset += static_cast<std::uint32_t>(reads[id].seq.size()) + 1;
  }
  if (backend_ == SeedBackend::kSuffixArray) {
    std::string text;
    text.reserve(offset);
    for (const ReadId id : members_) {
      text += reads[id].seq;
      text += kSeparator;
    }
    sa_.emplace(std::move(text));
  } else {
    kmers_.emplace(reads, members_, config.k);
  }
}

std::pair<std::uint32_t, std::uint32_t> RefIndex::resolve_member(
    std::uint32_t text_pos) const {
  FOCUS_ASSERT(!starts_.empty(), "resolve on empty index");
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), text_pos) - 1;
  const auto member_idx = static_cast<std::uint32_t>(it - starts_.begin());
  return {member_idx, text_pos - *it};
}

std::pair<ReadId, std::uint32_t> RefIndex::resolve(
    std::uint32_t text_pos) const {
  const auto [member_idx, offset] = resolve_member(text_pos);
  return {members_[member_idx], offset};
}

const SuffixArray& RefIndex::sa() const {
  FOCUS_ASSERT(sa_.has_value(), "suffix array not built for this backend");
  return *sa_;
}

const KmerIndex& RefIndex::kmers() const {
  FOCUS_ASSERT(kmers_.has_value(), "k-mer index not built for this backend");
  return *kmers_;
}

double RefIndex::build_work() const {
  return sa_.has_value() ? sa_->build_work() : kmers_->build_work();
}

namespace {

// Finds the densest diagonal cluster within `tolerance` and returns its
// median diagonal, or nullopt if the best cluster is smaller than min_hits.
std::optional<std::int64_t> consensus_diagonal(std::vector<std::int64_t>& diags,
                                               std::size_t min_hits,
                                               std::int64_t tolerance) {
  if (diags.size() < min_hits) return std::nullopt;
  std::sort(diags.begin(), diags.end());
  std::size_t best_begin = 0, best_len = 0;
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < diags.size(); ++hi) {
    while (diags[hi] - diags[lo] > tolerance) ++lo;
    if (hi - lo + 1 > best_len) {
      best_len = hi - lo + 1;
      best_begin = lo;
    }
  }
  if (best_len < min_hits) return std::nullopt;
  return diags[best_begin + best_len / 2];
}

// Classifies and verifies the overlap implied by a diagonal; returns nullopt
// if the overlap region is too short or fails verification thresholds.
//
// Verification is two-pass: a score-only banded pass (two DP rows, no
// traceback) always runs; the full pass with the move matrix runs only when
// the score's conservative column/identity bounds could still meet the
// thresholds. Both passes draw their buffers from the thread-local scratch
// arena, so the verify path performs no heap allocation after warmup.
std::optional<Overlap> verify_overlap(const io::ReadSet& reads, ReadId q,
                                      ReadId r, std::int64_t diagonal,
                                      const OverlapperConfig& config,
                                      double* work) {
  const std::string& qs = reads[q].seq;
  const std::string& rs = reads[r].seq;
  const auto lq = static_cast<std::int64_t>(qs.size());
  const auto lr = static_cast<std::int64_t>(rs.size());

  // q[i] aligns r[i - diagonal]; compute the implied overlap window.
  const std::int64_t q_begin = std::max<std::int64_t>(0, diagonal);
  const std::int64_t q_end = std::min<std::int64_t>(lq, lr + diagonal);
  if (q_end - q_begin < static_cast<std::int64_t>(config.min_overlap)) {
    return std::nullopt;
  }
  const std::int64_t r_begin = q_begin - diagonal;
  const std::int64_t r_end = q_end - diagonal;
  FOCUS_ASSERT(r_begin >= 0 && r_end <= lr, "overlap window out of range");

  const std::string_view qa =
      std::string_view(qs).substr(static_cast<std::size_t>(q_begin),
                                  static_cast<std::size_t>(q_end - q_begin));
  const std::string_view rb =
      std::string_view(rs).substr(static_cast<std::size_t>(r_begin),
                                  static_cast<std::size_t>(r_end - r_begin));

  // Pass 1: score only.
  if (work != nullptr) {
    *work += banded_score_work(qa.size(), rb.size(), config.band);
  }
  const BandScore pre = banded_score_only(qa, rb, config.band);
  if (!pre.valid) return std::nullopt;
  if (!score_may_pass(pre.score, qa.size(), rb.size(), config.min_overlap,
                      config.min_identity)) {
    return std::nullopt;  // traceback could not be accepted; skip pass 2
  }

  // Pass 2: full DP + traceback for exact column/match/gap counts.
  if (work != nullptr) {
    *work += banded_align_work(qa.size(), rb.size(), config.band);
  }
  const AlignmentResult aln = banded_global_align(qa, rb, config.band);
  FOCUS_ASSERT(aln.valid && aln.score == pre.score,
               "two-pass banded NW score mismatch");
  if (aln.columns < config.min_overlap) return std::nullopt;
  if (aln.identity() < config.min_identity) return std::nullopt;

  Overlap o;
  o.query = q;
  o.ref = r;
  o.length = aln.columns;
  o.identity = static_cast<float>(aln.identity());

  const bool covers_q = q_begin == 0 && q_end == lq;
  const bool covers_r = r_begin == 0 && r_end == lr;
  if (covers_q && covers_r) {
    // Equal-extent overlap: call the shorter read contained for determinism.
    o.kind = lq <= lr ? OverlapKind::kQueryContained
                      : OverlapKind::kRefContained;
  } else if (covers_q) {
    o.kind = OverlapKind::kQueryContained;
  } else if (covers_r) {
    o.kind = OverlapKind::kRefContained;
  } else if (diagonal > 0) {
    o.kind = OverlapKind::kSuffixPrefix;  // q's suffix meets r's prefix
  } else {
    o.kind = OverlapKind::kPrefixSuffix;  // r's suffix meets q's prefix
  }
  return o;
}

// Appends `diag` to member m's diagonal list, registering m as touched on
// first contact. Lists are empty between queries (reset below), so emptiness
// doubles as the "not yet touched" flag.
inline void push_hit(AlignScratch& scratch, std::uint32_t m,
                     std::int64_t diag) {
  auto& diags = scratch.member_diags[m];
  if (diags.empty()) scratch.touched.push_back(m);
  diags.push_back(diag);
}

}  // namespace

void query_overlaps_into(const io::ReadSet& reads, const RefIndex& index,
                         ReadId query_id, const OverlapperConfig& config,
                         AlignScratch& scratch, std::vector<Overlap>& out,
                         double* work) {
  const std::string& qs = reads[query_id].seq;
  if (qs.size() < config.k) return;

  const std::size_t member_count = index.members().size();
  if (scratch.member_diags.size() < member_count) {
    scratch.member_diags.resize(member_count);
  }
  scratch.touched.clear();
  scratch.candidates.clear();

  // Collect seed diagonals per reference member. Both backends produce the
  // same (member -> diagonal multiset) mapping — the suffix array enumerates
  // hits in suffix rank order, the hash index in (member, pos) order, and
  // consensus_diagonal() sorts — so everything downstream is
  // backend-independent.
  if (index.backend() == SeedBackend::kSuffixArray) {
    const double log_n =
        std::log2(static_cast<double>(index.sa().size()) + 2.0);
    for (std::size_t qpos = 0; qpos + config.k <= qs.size(); ++qpos) {
      const std::string_view seed =
          std::string_view(qs).substr(qpos, config.k);
      if (!dna::is_clean(seed)) continue;
      if (work != nullptr) *work += static_cast<double>(config.k) * log_n;
      const auto [lo, hi] = index.sa().find(seed);
      const std::size_t occurrences = hi - lo;
      if (occurrences == 0 || occurrences > config.max_kmer_occurrences) {
        continue;  // absent, or repeat-masked
      }
      for (std::size_t i = lo; i < hi; ++i) {
        const auto [m, rpos] = index.resolve_member(index.sa().at(i));
        if (index.members()[m] == query_id) continue;
        push_hit(scratch, m,
                 static_cast<std::int64_t>(qpos) -
                     static_cast<std::int64_t>(rpos));
        if (work != nullptr) *work += 1.0;
      }
    }
  } else {
    const KmerIndex& ki = index.kmers();
    FOCUS_CHECK(ki.k() == config.k,
                "k-mer index seed length does not match query config");
    scratch.query_packed.assign(qs);
    std::uint64_t key;
    for (std::size_t qpos = 0; qpos + config.k <= qs.size(); ++qpos) {
      if (!scratch.query_packed.kmer_at(qpos, config.k, key)) continue;
      // O(1) expected: one hash probe, no per-character comparisons.
      if (work != nullptr) *work += 1.0;
      const auto [first, last] = ki.find(key);
      const auto occurrences = static_cast<std::size_t>(last - first);
      if (occurrences == 0 || occurrences > config.max_kmer_occurrences) {
        continue;  // absent, or repeat-masked
      }
      for (const KmerIndex::Posting* p = first; p != last; ++p) {
        if (index.members()[p->member] == query_id) continue;
        push_hit(scratch, p->member,
                 static_cast<std::int64_t>(qpos) -
                     static_cast<std::int64_t>(p->pos));
        if (work != nullptr) *work += 1.0;
      }
    }
  }

  // Order candidates by read id for deterministic output.
  for (const std::uint32_t m : scratch.touched) {
    if (scratch.member_diags[m].size() >= config.min_kmer_hits) {
      scratch.candidates.emplace_back(index.members()[m], m);
    }
  }
  std::sort(scratch.candidates.begin(), scratch.candidates.end());

  for (const auto& [ref_id, m] : scratch.candidates) {
    auto& diags = scratch.member_diags[m];
    const auto diagonal = consensus_diagonal(diags, config.min_kmer_hits,
                                             config.diagonal_tolerance);
    if (diagonal) {
      if (auto o = verify_overlap(reads, query_id, ref_id, *diagonal, config,
                                  work)) {
        out.push_back(*o);
      }
    }
  }

  // Reset for the next query; capacities are retained.
  for (const std::uint32_t m : scratch.touched) {
    scratch.member_diags[m].clear();
  }
}

std::vector<Overlap> query_overlaps(const io::ReadSet& reads,
                                    const RefIndex& index, ReadId query_id,
                                    const OverlapperConfig& config,
                                    double* work) {
  std::vector<Overlap> out;
  query_overlaps_into(reads, index, query_id, config, tls_align_scratch(), out,
                      work);
  return out;
}

std::vector<Overlap> dedupe_overlaps(std::vector<Overlap> overlaps) {
  for (auto& o : overlaps) o = canonicalized(o);
  std::sort(overlaps.begin(), overlaps.end(),
            [](const Overlap& a, const Overlap& b) {
              if (a.query != b.query) return a.query < b.query;
              if (a.ref != b.ref) return a.ref < b.ref;
              if (a.length != b.length) return a.length > b.length;
              if (a.identity != b.identity) return a.identity > b.identity;
              // Total order: without this, which duplicate survives unique()
              // depends on gather order, so serial and mpr outputs could
              // disagree on the kind of tied records.
              return a.kind < b.kind;
            });
  overlaps.erase(std::unique(overlaps.begin(), overlaps.end(),
                             [](const Overlap& a, const Overlap& b) {
                               return a.query == b.query && a.ref == b.ref;
                             }),
                 overlaps.end());
  return overlaps;
}

namespace {

// Enumerates subset pairs (i, j), i <= j, in deterministic order.
std::vector<std::pair<std::size_t, std::size_t>> subset_pairs(
    std::size_t subsets) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(subsets * (subsets + 1) / 2);
  for (std::size_t i = 0; i < subsets; ++i) {
    for (std::size_t j = i; j < subsets; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

// Processes one subset pair against a prebuilt index of subset j.
void process_pair(const io::ReadSet& reads,
                  const std::vector<std::vector<ReadId>>& subsets,
                  std::size_t i, const RefIndex& index_j,
                  const OverlapperConfig& config, double* work,
                  std::vector<Overlap>& out) {
  AlignScratch& scratch = tls_align_scratch();
  for (const ReadId q : subsets[i]) {
    query_overlaps_into(reads, index_j, q, config, scratch, out, work);
  }
}

}  // namespace

std::vector<Overlap> find_overlaps_serial(const io::ReadSet& reads,
                                          const OverlapperConfig& config,
                                          double* work) {
  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const auto subsets = io::split_into_subsets(reads.size(), config.subsets);

  std::vector<Overlap> all;
  for (std::size_t j = 0; j < subsets.size(); ++j) {
    if (subsets[j].empty()) continue;
    RefIndex index(reads, subsets[j], config);
    if (work != nullptr) *work += index.build_work();
    for (std::size_t i = 0; i <= j; ++i) {
      process_pair(reads, subsets, i, index, config, work, all);
    }
  }
  return dedupe_overlaps(std::move(all));
}

namespace {

/// Queries per pool task. Fixed (never derived from the thread count) so the
/// task decomposition — and therefore the order work units are summed in —
/// is identical for every pool width.
constexpr std::size_t kQueriesPerTask = 16;

}  // namespace

std::vector<Overlap> find_overlaps(const io::ReadSet& reads,
                                   const OverlapperConfig& config,
                                   double* work) {
  const unsigned threads = resolve_thread_count(config.threads);
  if (threads <= 1) return find_overlaps_serial(reads, config, work);

  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const auto subsets = io::split_into_subsets(reads.size(), config.subsets);

  ThreadPool pool(threads);

  // Index every non-empty reference subset exactly once, in parallel.
  std::vector<std::unique_ptr<RefIndex>> indexes(subsets.size());
  pool.parallel_for(subsets.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t j = b; j < e; ++j) {
      if (!subsets[j].empty()) {
        indexes[j] = std::make_unique<RefIndex>(reads, subsets[j], config);
      }
    }
  });

  // Flatten the (i, j) subset pairs into per-query-chunk tasks, enumerated
  // in the serial driver's traversal order (j outer, i inner, reads in
  // subset order). Chunking below the pair level keeps the pool busy even
  // when there are fewer pairs than threads.
  struct QueryTask {
    std::size_t i, j;
    std::size_t q_begin, q_end;  // range within subsets[i]
  };
  std::vector<QueryTask> tasks;
  for (std::size_t j = 0; j < subsets.size(); ++j) {
    if (subsets[j].empty()) continue;
    for (std::size_t i = 0; i <= j; ++i) {
      for (std::size_t q = 0; q < subsets[i].size(); q += kQueriesPerTask) {
        tasks.push_back(
            {i, j, q, std::min(subsets[i].size(), q + kQueriesPerTask)});
      }
    }
  }

  struct TaskResult {
    std::vector<Overlap> overlaps;
    double work = 0.0;
  };
  auto results = pool.parallel_transform<TaskResult>(
      tasks.size(), 1, [&](std::size_t t) {
        const QueryTask& task = tasks[t];
        TaskResult r;
        double* task_work = work != nullptr ? &r.work : nullptr;
        AlignScratch& scratch = tls_align_scratch();
        for (std::size_t q = task.q_begin; q < task.q_end; ++q) {
          query_overlaps_into(reads, *indexes[task.j], subsets[task.i][q],
                              config, scratch, r.overlaps, task_work);
        }
        return r;
      });

  // Deterministic merge: index build work in j order, then task results in
  // task order (== the serial traversal order).
  std::vector<Overlap> all;
  if (work != nullptr) {
    for (const auto& index : indexes) {
      if (index) *work += index->build_work();
    }
  }
  for (auto& r : results) {
    all.insert(all.end(), r.overlaps.begin(), r.overlaps.end());
    if (work != nullptr) *work += r.work;
  }
  return dedupe_overlaps(std::move(all));
}

ParallelOverlapResult find_overlaps_parallel(const io::ReadSet& reads,
                                             const OverlapperConfig& config,
                                             int nranks, mpr::CostModel cost) {
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  if (config.strategy == SeedStrategy::kDistributedIndex) {
    return find_overlaps_sharded(reads, config, nranks, cost);
  }
  const auto subsets = io::split_into_subsets(reads.size(), config.subsets);
  const auto pairs = subset_pairs(config.subsets);

  ParallelOverlapResult result;
  result.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // Pairs are grouped by reference subset j so a rank builds each
        // needed index exactly once.
        std::vector<Overlap> mine;
        double work = 0.0;
        std::size_t pair_idx = 0;
        for (std::size_t j = 0; j < subsets.size(); ++j) {
          // Determine whether this rank owns any pair with this reference.
          std::vector<std::size_t> my_queries;
          for (std::size_t i = 0; i <= j; ++i, ++pair_idx) {
            if (static_cast<int>(pair_idx % static_cast<std::size_t>(
                                     comm.size())) == comm.rank()) {
              my_queries.push_back(i);
            }
          }
          if (my_queries.empty() || subsets[j].empty()) continue;
          RefIndex index(reads, subsets[j], config);
          work += index.build_work();
          for (const std::size_t i : my_queries) {
            process_pair(reads, subsets, i, index, config, &work, mine);
          }
        }
        comm.charge(work);

        // Gather at rank 0.
        mpr::Message local;
        local.pack_vector(mine);
        auto gathered = comm.gather(std::move(local), 0);
        if (comm.rank() == 0) {
          std::vector<Overlap> all;
          for (auto& msg : gathered) {
            auto part = msg.unpack_vector<Overlap>();
            FOCUS_CHECK(msg.fully_consumed(), "trailing bytes in gathered frame");
            all.insert(all.end(), part.begin(), part.end());
          }
          comm.charge(static_cast<double>(all.size()) *
                      std::log2(static_cast<double>(all.size()) + 2.0));
          result.overlaps = dedupe_overlaps(std::move(all));
        }
      },
      cost);
  return result;
}

void verify_seed_hits(const io::ReadSet& reads, std::vector<SeedHit> hits,
                      const OverlapperConfig& config, std::vector<Overlap>& out,
                      double* work) {
  // Canonical order: all hits of one (query, ref) pair become one contiguous
  // group regardless of which shard produced them or in what round order they
  // arrived. The diag tiebreak makes the grouped lists — and therefore the
  // work-unit summation order — deterministic too.
  std::sort(hits.begin(), hits.end(), [](const SeedHit& a, const SeedHit& b) {
    if (a.query != b.query) return a.query < b.query;
    if (a.ref != b.ref) return a.ref < b.ref;
    return a.diag < b.diag;
  });
  if (work != nullptr) {
    const double n = static_cast<double>(hits.size());
    *work += n * std::log2(n + 2.0);
  }

  std::vector<std::int64_t> diags;
  for (std::size_t i = 0; i < hits.size();) {
    std::size_t j = i;
    diags.clear();
    while (j < hits.size() && hits[j].query == hits[i].query &&
           hits[j].ref == hits[i].ref) {
      diags.push_back(hits[j].diag);
      ++j;
    }
    // Same per-pair decision as the all-pairs query loop: the complete diag
    // multiset feeds one consensus + one banded-NW verification, so duplicate
    // candidates from multi-seed hits collapse to exactly one verify call.
    const auto diagonal = consensus_diagonal(diags, config.min_kmer_hits,
                                             config.diagonal_tolerance);
    if (diagonal) {
      if (auto o = verify_overlap(reads, hits[i].query, hits[i].ref, *diagonal,
                                  config, work)) {
        out.push_back(*o);
      }
    }
    i = j;
  }
}

void distributed_block_overlaps(const io::ReadSet& reads,
                                const KmerShard& shard,
                                const SubsetRanges& subsets, ReadId q_begin,
                                ReadId q_end, const OverlapperConfig& config,
                                std::vector<Overlap>& out, double* work) {
  auto probes =
      extract_query_probes(reads, q_begin, q_end, config.k, 1, work);
  std::vector<SeedHit> hits;
  for (const QueryProbe& probe : probes[0]) {
    shard.collect_hits(probe, subsets, config.max_kmer_occurrences, hits,
                       work);
  }
  verify_seed_hits(reads, std::move(hits), config, out, work);
}

std::vector<Overlap> find_overlaps_distributed_serial(
    const io::ReadSet& reads, const OverlapperConfig& config, double* work) {
  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const SubsetRanges subsets(
      io::split_into_subsets(reads.size(), config.subsets));
  const auto n = static_cast<ReadId>(reads.size());

  auto postings = extract_shard_postings(reads, 0, n, config.k, 1, work);
  KmerShard shard(std::move(postings[0]), config.k);
  if (work != nullptr) *work += shard.build_work();

  std::vector<Overlap> all;
  distributed_block_overlaps(reads, shard, subsets, 0, n, config, all, work);
  return dedupe_overlaps(std::move(all));
}

namespace {

// Message tags of the sharded protocol's rounds (DESIGN.md §6c).
constexpr int kTagPostings = 210;
constexpr int kTagProbes = 211;
constexpr int kTagHits = 212;

// Contiguous read stripe of one rank: the first n % nranks ranks take one
// extra read. Owner lookup inverts the same arithmetic in O(1).
ReadId stripe_begin(std::size_t n, int nranks, int rank) {
  const std::size_t base = n / static_cast<std::size_t>(nranks);
  const std::size_t extra = n % static_cast<std::size_t>(nranks);
  const auto r = static_cast<std::size_t>(rank);
  return static_cast<ReadId>(base * r + std::min(r, extra));
}

int read_owner(ReadId id, std::size_t n, int nranks) {
  const std::size_t base = n / static_cast<std::size_t>(nranks);
  const std::size_t extra = n % static_cast<std::size_t>(nranks);
  const std::size_t wide = extra * (base + 1);  // reads held by +1-sized ranks
  if (id < wide) return static_cast<int>(id / (base + 1));
  FOCUS_ASSERT(base > 0, "read id beyond the striped range");
  return static_cast<int>(extra + (id - wide) / base);
}

template <typename Rec>
std::vector<mpr::Message> pack_buckets(std::vector<std::vector<Rec>> buckets) {
  std::vector<mpr::Message> out(buckets.size());
  for (std::size_t d = 0; d < buckets.size(); ++d) {
    out[d].pack_vector(buckets[d]);
  }
  return out;
}

template <typename Rec>
std::vector<Rec> unpack_merge(std::vector<mpr::Message>& incoming) {
  std::vector<Rec> merged;
  for (auto& msg : incoming) {
    auto part = msg.unpack_vector<Rec>();
    FOCUS_CHECK(msg.fully_consumed(), "trailing bytes in round frame");
    merged.insert(merged.end(), part.begin(), part.end());
  }
  return merged;
}

}  // namespace

ParallelOverlapResult find_overlaps_sharded(const io::ReadSet& reads,
                                            const OverlapperConfig& config,
                                            int nranks, mpr::CostModel cost) {
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const std::size_t n = reads.size();

  ParallelOverlapResult result;
  result.stats = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        const SubsetRanges subsets(
            io::split_into_subsets(n, config.subsets));
        const ReadId my_begin = stripe_begin(n, nranks, comm.rank());
        const ReadId my_end = stripe_begin(n, nranks, comm.rank() + 1);
        double work = 0.0;

        // Round 1 — shard build: every rank scans its read stripe once and
        // routes each posting to the key's owner (shard_owner is a pure
        // function of the key, so all postings of a key meet on one rank).
        auto posting_frames = mpr::alltoall_round(
            comm,
            [&] {
              auto buckets = extract_shard_postings(reads, my_begin, my_end,
                                                    config.k, nranks, &work);
              comm.charge(work);
              work = 0.0;
              return pack_buckets(std::move(buckets));
            }(),
            kTagPostings);
        const KmerShard shard(unpack_merge<ShardPosting>(posting_frames),
                              config.k);
        comm.charge(shard.build_work());

        // Round 2 — seed lookup: query k-mers go to their key's shard.
        auto probe_frames = mpr::alltoall_round(
            comm,
            [&] {
              auto buckets = extract_query_probes(reads, my_begin, my_end,
                                                  config.k, nranks, &work);
              comm.charge(work);
              work = 0.0;
              return pack_buckets(std::move(buckets));
            }(),
            kTagProbes);

        // Answer probes in ascending source order; every unmasked hit is
        // routed to the rank that owns the REFERENCE read, so all hits of a
        // (query, ref) pair — from every shard — meet there.
        std::vector<std::vector<SeedHit>> hit_buckets(
            static_cast<std::size_t>(nranks));
        {
          std::vector<SeedHit> hits;
          for (auto& msg : probe_frames) {
            auto probes = msg.unpack_vector<QueryProbe>();
            FOCUS_CHECK(msg.fully_consumed(), "trailing bytes in probe frame");
            for (const QueryProbe& probe : probes) {
              hits.clear();
              shard.collect_hits(probe, subsets, config.max_kmer_occurrences,
                                 hits, &work);
              for (const SeedHit& h : hits) {
                hit_buckets[static_cast<std::size_t>(
                                read_owner(h.ref, n, nranks))]
                    .push_back(h);
              }
            }
          }
          comm.charge(work);
          work = 0.0;
        }

        // Round 3 — verification at the reference owner. verify_seed_hits
        // sorts into the canonical (query, ref, diag) order first, so the
        // arrival order of the frames cannot leak into the output.
        auto hit_frames = mpr::alltoall_round(
            comm, pack_buckets(std::move(hit_buckets)), kTagHits);
        std::vector<Overlap> mine;
        verify_seed_hits(reads, unpack_merge<SeedHit>(hit_frames), config,
                         mine, &work);
        comm.charge(work);

        // Gather at rank 0 and dedupe through the same total order as every
        // other driver.
        mpr::Message local;
        local.pack_vector(mine);
        auto gathered = comm.gather(std::move(local), 0);
        if (comm.rank() == 0) {
          std::vector<Overlap> all;
          for (auto& msg : gathered) {
            auto part = msg.unpack_vector<Overlap>();
            FOCUS_CHECK(msg.fully_consumed(),
                        "trailing bytes in gathered frame");
            all.insert(all.end(), part.begin(), part.end());
          }
          comm.charge(static_cast<double>(all.size()) *
                      std::log2(static_cast<double>(all.size()) + 2.0));
          result.overlaps = dedupe_overlaps(std::move(all));
        }
      },
      cost);
  return result;
}

}  // namespace focus::align
