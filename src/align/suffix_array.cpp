#include "align/suffix_array.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace focus::align {

SuffixArray::SuffixArray(std::string text) : text_(std::move(text)) {
  const std::size_t n = text_.size();
  sa_.resize(n);
  if (n == 0) return;
  std::iota(sa_.begin(), sa_.end(), 0u);

  // rank[i] = rank of suffix i by its first h characters.
  std::vector<std::uint32_t> rank(n), tmp(n), count;
  for (std::size_t i = 0; i < n; ++i) {
    rank[i] = static_cast<unsigned char>(text_[i]);
  }

  // Initial sort by first character (counting sort over 256 buckets).
  {
    count.assign(257, 0);
    for (std::size_t i = 0; i < n; ++i) ++count[rank[i] + 1];
    for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
    for (std::size_t i = 0; i < n; ++i) {
      tmp[count[rank[i]]++] = static_cast<std::uint32_t>(i);
    }
    sa_.swap(tmp);
  }

  // Compact initial ranks to [0, n) so counting sorts can use n+1 buckets.
  std::vector<std::uint32_t> new_rank(n);
  {
    new_rank[sa_[0]] = 0;
    std::uint32_t r = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (text_[sa_[i]] != text_[sa_[i - 1]]) ++r;
      new_rank[sa_[i]] = r;
    }
    rank.swap(new_rank);
    if (r + 1 == n) return;  // all first characters distinct
  }

  for (std::size_t h = 1;; h <<= 1) {
    build_work_ += static_cast<double>(n);

    // Sort by (rank[i], rank[i+h]) using two stable counting-sort passes.
    // Pass 1: by secondary key. Suffixes with i+h >= n have empty (smallest)
    // secondary keys and come first.
    std::size_t fill = 0;
    for (std::size_t i = n - std::min(h, n); i < n; ++i) {
      tmp[fill++] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (sa_[i] >= h) tmp[fill++] = sa_[i] - static_cast<std::uint32_t>(h);
    }
    // Pass 2: stable sort by primary key rank[].
    count.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++count[rank[i] + 1];
    for (std::size_t i = 1; i <= n; ++i) count[i] += count[i - 1];
    for (std::size_t i = 0; i < n; ++i) {
      sa_[count[rank[tmp[i]]]++] = tmp[i];
    }

    // Re-rank.
    new_rank[sa_[0]] = 0;
    std::uint32_t r = 0;
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t a = sa_[i - 1];
      const std::uint32_t b = sa_[i];
      const std::uint32_t a2 = (a + h < n) ? rank[a + h] + 1 : 0;
      const std::uint32_t b2 = (b + h < n) ? rank[b + h] + 1 : 0;
      if (rank[a] != rank[b] || a2 != b2) ++r;
      new_rank[b] = r;
    }
    rank.swap(new_rank);
    if (r + 1 == n) break;  // all ranks distinct: fully sorted
    if (h >= n) break;
  }
}

std::pair<std::size_t, std::size_t> SuffixArray::find(
    std::string_view pattern) const {
  // Lower bound: first suffix >= pattern.
  auto suffix_less_than_pattern = [&](std::uint32_t start) {
    const std::string_view suffix =
        std::string_view(text_).substr(start);
    const std::size_t m = std::min(suffix.size(), pattern.size());
    const int cmp = suffix.substr(0, m).compare(pattern.substr(0, m));
    if (cmp != 0) return cmp < 0;
    return suffix.size() < pattern.size();
  };
  // Upper bound: first suffix that does not start with pattern and is
  // greater. Equivalent: first suffix whose prefix compares > pattern.
  auto pattern_less_than_suffix = [&](std::uint32_t start) {
    const std::string_view suffix =
        std::string_view(text_).substr(start);
    const std::size_t m = std::min(suffix.size(), pattern.size());
    const int cmp = pattern.substr(0, m).compare(suffix.substr(0, m));
    if (cmp != 0) return cmp < 0;
    return false;  // pattern is a prefix of suffix -> still within range
  };

  const auto lo = std::partition_point(
      sa_.begin(), sa_.end(),
      [&](std::uint32_t s) { return suffix_less_than_pattern(s); });
  const auto hi = std::partition_point(
      lo, sa_.end(),
      [&](std::uint32_t s) { return !pattern_less_than_suffix(s); });
  return {static_cast<std::size_t>(lo - sa_.begin()),
          static_cast<std::size_t>(hi - sa_.begin())};
}

std::size_t SuffixArray::count(std::string_view pattern) const {
  const auto [lo, hi] = find(pattern);
  return hi - lo;
}

std::vector<std::uint32_t> SuffixArray::locate(std::string_view pattern) const {
  const auto [lo, hi] = find(pattern);
  std::vector<std::uint32_t> out(sa_.begin() + static_cast<std::ptrdiff_t>(lo),
                                 sa_.begin() + static_cast<std::ptrdiff_t>(hi));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace focus::align
