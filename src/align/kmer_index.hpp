// Hashed k-mer seed index over one reference read subset — the O(1)-lookup
// replacement for suffix-array seeding on the overlap hot path (paper §II-B).
//
// Layout: every clean (ambiguity-free) k-mer window of every member read
// becomes a posting {member, pos}. Postings are stored in one flat array
// sorted by (key, member, pos) — member order, then position — so bucket
// iteration order is deterministic and independent of hash-table geometry.
// An open-addressing table (power-of-two size, load factor <= 0.5, linear
// probing, splitmix64-finalized hashes) maps a packed k-mer key to its
// posting range in O(1) expected time.
//
// Equivalence with the suffix-array oracle: a clean seed matches the
// concatenated reference text exactly at the (member, pos) windows whose
// packed key equals the seed's key (seeds cannot span the '\x01' separator
// or an ambiguous base, and packing is injective on clean windows), so for
// any seed the posting multiset equals the suffix-array hit multiset —
// including hits inside the query read itself when the query belongs to the
// indexed subset, which keeps repeat masking byte-compatible.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "io/read.hpp"

namespace focus::align {

/// splitmix64 finalizer over a packed k-mer key — the one hash used both for
/// the posting table probe sequence and for assigning a key to its owning
/// mpr shard (shard_index.hpp). A single well-mixed function keeps shard
/// ownership a pure function of the key alone.
std::uint64_t kmer_hash(std::uint64_t key);

class KmerIndex {
 public:
  /// One k-mer occurrence: member index (position of the read in the
  /// `members` vector, NOT the ReadId) and base offset within that read.
  struct Posting {
    std::uint32_t member;
    std::uint32_t pos;
  };

  /// One keyed occurrence, the unit a distributed shard is built from.
  struct Entry {
    std::uint64_t key;
    std::uint32_t member;
    std::uint32_t pos;
  };

  /// Indexes every clean k-mer of `reads[members[i]]` for all i.
  /// Requires 1 <= k <= 32.
  KmerIndex(const io::ReadSet& reads, const std::vector<ReadId>& members,
            unsigned k);

  /// Builds directly from keyed occurrences (any order; duplicates kept).
  /// This is the per-shard store of the distributed-index overlapper: the
  /// entries are whatever postings were routed to this shard, with `member`
  /// carrying the global ReadId instead of a subset-local index.
  KmerIndex(std::vector<Entry> entries, unsigned k);

  unsigned k() const { return k_; }

  /// Posting range [first, last) for a packed k-mer key (PackedSeq::kmer_at
  /// encoding); empty range if the key is absent. O(1) expected.
  std::pair<const Posting*, const Posting*> find(std::uint64_t key) const;

  /// Number of occurrences of `key` (range length of find()).
  std::size_t count(std::uint64_t key) const {
    const auto [first, last] = find(key);
    return static_cast<std::size_t>(last - first);
  }

  std::size_t posting_count() const { return postings_.size(); }
  std::size_t distinct_keys() const { return distinct_; }

  /// Work units spent building (packing + sort + table fill), for
  /// virtual-time charging.
  double build_work() const { return build_work_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;
    std::uint32_t count = 0;  // 0 = empty slot
  };

  /// Shared tail of both constructors: sort, flatten, fill the table.
  void build(std::vector<Entry> entries);

  unsigned k_;
  std::vector<Posting> postings_;  // sorted by (key, member, pos)
  std::vector<Slot> table_;        // open addressing, power-of-two size
  std::uint64_t table_mask_ = 0;
  std::size_t distinct_ = 0;
  double build_work_ = 0.0;
};

}  // namespace focus::align
