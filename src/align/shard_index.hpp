// Sharded k-mer seed index for distributed overlap discovery (DESIGN.md §6c).
//
// The all-pairs overlapper (overlapper.hpp) re-indexes every reference subset
// on every rank that processes one of its subset pairs — O(s²) subset pairs
// of work. The distributed-index strategy builds ONE k-mer index over all
// reads, sharded across mpr ranks by key hash: shard_owner(key, ranks) is a
// pure function of the key, so every posting and every query probe for a key
// lands on the same rank, and that rank alone can answer lookups for it.
//
// Byte-identity with the all-pairs path hinges on one invariant: repeat
// masking (OverlapperConfig::max_kmer_occurrences) is applied PER REFERENCE
// SUBSET, exactly as each all-pairs RefIndex would. Because preprocessing
// splits reads into contiguous ReadId ranges (io::split_into_subsets), a
// bucket sorted by (key, read, pos) keeps each subset's postings contiguous,
// so per-subset occurrence counts are a subrange length — and because a key's
// postings are never split across shards, those counts are shard-local facts.
//
// The query side replicates the all-pairs pair enumeration (i <= j): a query
// read in subset s only collects hits against reference reads in subsets
// >= s. Together with per-subset masking and the self-hit skip this makes the
// distributed seed-hit multiset per (query, reference) pair equal to the
// all-pairs one, hence the same candidates, the same consensus diagonals, the
// same banded-NW verifications, and byte-identical deduped output.
#pragma once

#include <cstdint>
#include <vector>

#include "align/kmer_index.hpp"
#include "common/types.hpp"
#include "io/read.hpp"

namespace focus::align {

/// Contiguous subset boundaries: subset s covers ReadId [begin(s), end(s)).
/// Built from io::split_into_subsets output; rejects non-contiguous splits.
class SubsetRanges {
 public:
  explicit SubsetRanges(const std::vector<std::vector<ReadId>>& subsets);

  std::size_t count() const { return bounds_.size() - 1; }
  ReadId begin(std::size_t s) const { return bounds_[s]; }
  ReadId end(std::size_t s) const { return bounds_[s + 1]; }
  ReadId total_reads() const { return bounds_.back(); }

  /// Subset containing `id` (binary search over the boundaries).
  std::uint32_t subset_of(ReadId id) const;

 private:
  std::vector<ReadId> bounds_;  // size count()+1, ascending, bounds_[0] == 0
};

/// Owning rank of a k-mer key: kmer_hash(key) % nranks. Pure in (key,
/// nranks) — the property the shard-routing tests pin down.
int shard_owner(std::uint64_t key, int nranks);

/// A reference posting routed to its key's shard. `ref` is the global
/// ReadId (doubling as the KmerIndex member), `pos` the base offset.
struct ShardPosting {
  std::uint64_t key;
  std::uint32_t ref;
  std::uint32_t pos;
};
static_assert(sizeof(ShardPosting) == 16, "no padding: shipped as raw bytes");

/// One query k-mer routed to its key's shard.
struct QueryProbe {
  std::uint64_t key;
  ReadId query;
  std::uint32_t qpos;
};
static_assert(sizeof(QueryProbe) == 16, "no padding: shipped as raw bytes");

/// An unmasked seed hit, routed to the rank owning the reference read.
struct SeedHit {
  ReadId query;
  ReadId ref;
  std::int64_t diag;  // qpos - rpos
};
static_assert(sizeof(SeedHit) == 16, "no padding: shipped as raw bytes");

/// Extracts every clean k-mer posting of reads [begin, end) and buckets it
/// by owning shard rank. `work` accumulates one unit per base scanned.
std::vector<std::vector<ShardPosting>> extract_shard_postings(
    const io::ReadSet& reads, ReadId begin, ReadId end, unsigned k,
    int nranks, double* work = nullptr);

/// Buckets every clean k-mer of query reads [begin, end) by owning shard
/// rank. Reads shorter than k contribute nothing (they can never be a query
/// in the all-pairs path either). `work`: one unit per base scanned.
std::vector<std::vector<QueryProbe>> extract_query_probes(
    const io::ReadSet& reads, ReadId begin, ReadId end, unsigned k,
    int nranks, double* work = nullptr);

/// One rank's shard: a KmerIndex over whatever postings were routed here.
class KmerShard {
 public:
  /// `postings` in any order; the index build canonicalizes. An empty vector
  /// is a valid (always-miss) shard — the degenerate case when fewer distinct
  /// keys than ranks exist.
  KmerShard(std::vector<ShardPosting> postings, unsigned k);

  /// Appends every unmasked seed hit for `probe` to `out`, applying the
  /// all-pairs semantics: per-reference-subset masking (a subset whose
  /// occurrence count for this key exceeds `max_occ` contributes no hits),
  /// reference subsets >= the query's subset only, and the self-hit skip.
  /// `work`: one unit per probe plus one per emitted hit (the all-pairs
  /// query loop charges the same shape).
  void collect_hits(const QueryProbe& probe, const SubsetRanges& subsets,
                    std::size_t max_occ, std::vector<SeedHit>& out,
                    double* work = nullptr) const;

  const KmerIndex& index() const { return index_; }
  double build_work() const { return index_.build_work(); }

 private:
  KmerIndex index_;
};

}  // namespace focus::align
