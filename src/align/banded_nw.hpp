// Banded Needleman–Wunsch global alignment (paper §II-B: candidate overlaps
// found by k-mer seeding are verified "using banded Needleman-Wunsch
// alignment").
//
// The DP is restricted to a diagonal band of half-width `band`, so aligning
// two ~L-base overlap regions costs O(band * L) instead of O(L^2). The
// traceback yields the number of aligned columns and matches, from which the
// paper's two acceptance criteria — alignment length and alignment identity —
// are computed.
#pragma once

#include <cstdint>
#include <string_view>

namespace focus::align {

struct AlignmentResult {
  bool valid = false;        // false if the band could not connect the corners
  std::uint32_t columns = 0; // total alignment columns (matches+mismatches+gaps)
  std::uint32_t matches = 0;
  std::uint32_t mismatches = 0;
  std::uint32_t gaps = 0;
  /// Length of the gap runs at the alignment's two ends. When the aligned
  /// windows are slightly misregistered (an offset-estimate error), the true
  /// overlap is flanked by terminal gaps; end-trimmed statistics ignore them.
  std::uint32_t lead_gaps = 0;
  std::uint32_t tail_gaps = 0;
  std::int32_t score = 0;

  double identity() const {
    return columns == 0 ? 0.0
                        : static_cast<double>(matches) /
                              static_cast<double>(columns);
  }

  /// Columns excluding terminal gap runs.
  std::uint32_t core_columns() const {
    return columns - lead_gaps - tail_gaps;
  }

  /// Identity over the end-trimmed alignment.
  double core_identity() const {
    const std::uint32_t core = core_columns();
    return core == 0 ? 0.0
                     : static_cast<double>(matches) / static_cast<double>(core);
  }
};

struct AlignScoring {
  std::int32_t match = 1;
  std::int32_t mismatch = -2;
  std::int32_t gap = -3;
};

/// Globally aligns a vs b within a band of half-width `band` around the skew
/// diagonal (the band is widened by |len(a) - len(b)| so both corners are
/// always inside it).
AlignmentResult banded_global_align(std::string_view a, std::string_view b,
                                    std::uint32_t band,
                                    const AlignScoring& scoring = {});

/// DP work units of one call (for virtual-time charging).
double banded_align_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band);

}  // namespace focus::align
