// Banded Needleman–Wunsch global alignment (paper §II-B: candidate overlaps
// found by k-mer seeding are verified "using banded Needleman-Wunsch
// alignment").
//
// The DP is restricted to a diagonal band of half-width `band`, so aligning
// two ~L-base overlap regions costs O(band * L) instead of O(L^2).
//
// The kernel is two-pass and allocation-free:
//
//   1. banded_score_only() computes the optimal score with two reusable DP
//      rows from the thread-local scratch arena (align_scratch.hpp) — no
//      move matrix, no traceback, no allocation.
//   2. score_may_pass() turns that score into conservative upper bounds on
//      alignment columns and identity; candidates whose bounds already fail
//      the overlap thresholds are rejected without ever running pass 2.
//   3. banded_global_align() runs the full DP with the move matrix (also
//      from the scratch arena) and the traceback that yields the exact
//      column/match/gap counts for the paper's two acceptance criteria.
//
// Both passes compute the same recurrence, so banded_score_only().score ==
// banded_global_align().score exactly, and the prefilter never changes which
// overlaps are accepted — only how much work rejection costs.
#pragma once

#include <cstdint>
#include <string_view>

namespace focus::align {

struct AlignmentResult {
  bool valid = false;        // false if the band could not connect the corners
  std::uint32_t columns = 0; // total alignment columns (matches+mismatches+gaps)
  std::uint32_t matches = 0;
  std::uint32_t mismatches = 0;
  std::uint32_t gaps = 0;
  /// Length of the gap runs at the alignment's two ends. When the aligned
  /// windows are slightly misregistered (an offset-estimate error), the true
  /// overlap is flanked by terminal gaps; end-trimmed statistics ignore them.
  std::uint32_t lead_gaps = 0;
  std::uint32_t tail_gaps = 0;
  std::int32_t score = 0;

  double identity() const {
    return columns == 0 ? 0.0
                        : static_cast<double>(matches) /
                              static_cast<double>(columns);
  }

  /// Columns excluding terminal gap runs.
  std::uint32_t core_columns() const {
    return columns - lead_gaps - tail_gaps;
  }

  /// Identity over the end-trimmed alignment.
  double core_identity() const {
    const std::uint32_t core = core_columns();
    return core == 0 ? 0.0
                     : static_cast<double>(matches) / static_cast<double>(core);
  }
};

struct AlignScoring {
  std::int32_t match = 1;
  std::int32_t mismatch = -2;
  std::int32_t gap = -3;
};

/// Outcome of the score-only first pass.
struct BandScore {
  bool valid = false;   // false if the band could not connect the corners
  std::int32_t score = 0;
};

/// Globally aligns a vs b within a band of half-width `band` around the skew
/// diagonal (the band is widened by |len(a) - len(b)| so both corners are
/// always inside it). DP buffers come from the thread-local scratch arena;
/// no heap allocation after warmup.
AlignmentResult banded_global_align(std::string_view a, std::string_view b,
                                    std::uint32_t band,
                                    const AlignScoring& scoring = {});

/// Score-only pass: identical band geometry and recurrence as
/// banded_global_align, two DP rows, no move matrix. `score` equals the full
/// pass's score exactly.
BandScore banded_score_only(std::string_view a, std::string_view b,
                            std::uint32_t band,
                            const AlignScoring& scoring = {});

/// Conservative prefilter: true if an optimal global alignment of sequences
/// of lengths len_a and len_b with this score COULD have >= min_columns
/// alignment columns and >= min_identity identity. A false return guarantees
/// the full traceback would be rejected by those thresholds, so callers may
/// skip pass 2; a true return promises nothing. Exact for the linear scoring
/// identities M+X+gaps_a = len_a, M+X+gaps_b = len_b; if the scoring does not
/// satisfy match >= mismatch >= 2*gap (needed for the bounds to be sound),
/// the filter abstains and returns true.
bool score_may_pass(std::int32_t score, std::size_t len_a, std::size_t len_b,
                    std::uint32_t min_columns, double min_identity,
                    const AlignScoring& scoring = {});

/// DP work units of the full pass (score + move matrix + traceback), for
/// virtual-time charging.
double banded_align_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band);

/// DP work units of the score-only pass. Same cell count as the full pass
/// but charged separately so the two-pass cost model (score pass always,
/// traceback pass only for surviving candidates) stays explicit.
double banded_score_work(std::size_t len_a, std::size_t len_b,
                         std::uint32_t band);

}  // namespace focus::align
