// Suffix array over a text, with substring search — the index used for k-mer
// seeding during read overlap detection (paper §II-B: "A reference read
// subset Rr is indexed by a suffix array Sr").
//
// Construction is prefix-doubling with radix (counting) sort per round,
// O(n log n) — the same complexity class as the Larsson–Sadakane algorithm
// the paper cites [14].
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace focus::align {

class SuffixArray {
 public:
  /// Builds the suffix array of `text`. The text may contain arbitrary bytes;
  /// ordering is by unsigned char.
  explicit SuffixArray(std::string text);

  const std::string& text() const { return text_; }
  std::size_t size() const { return sa_.size(); }

  /// Suffix start position at suffix-array index i.
  std::uint32_t at(std::size_t i) const { return sa_[i]; }

  /// Half-open range [lo, hi) of suffix-array indices whose suffixes start
  /// with `pattern`. Empty pattern matches everything. O(|pattern| log n).
  std::pair<std::size_t, std::size_t> find(std::string_view pattern) const;

  /// Number of occurrences of `pattern` in the text.
  std::size_t count(std::string_view pattern) const;

  /// All start positions of `pattern`, in increasing position order.
  std::vector<std::uint32_t> locate(std::string_view pattern) const;

  /// Approximate work units spent building (for virtual-time charging).
  double build_work() const { return build_work_; }

 private:
  std::string text_;
  std::vector<std::uint32_t> sa_;
  double build_work_ = 0.0;
};

}  // namespace focus::align
