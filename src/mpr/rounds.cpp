#include "mpr/rounds.hpp"

#include <utility>

#include "common/error.hpp"

namespace focus::mpr {

std::vector<Message> alltoall_round(Comm& comm, std::vector<Message> outgoing,
                                    int tag) {
  const int size = comm.size();
  const Rank self = comm.rank();
  FOCUS_CHECK(outgoing.size() == static_cast<std::size_t>(size),
              "alltoall_round needs one outgoing message per rank");

  std::vector<Message> incoming(static_cast<std::size_t>(size));
  // Self slot: local copy, no network, no fault surface (matches MPI).
  incoming[static_cast<std::size_t>(self)] =
      std::move(outgoing[static_cast<std::size_t>(self)]);

  // Eager sends first — no receive can block a peer's send.
  for (int d = 0; d < size; ++d) {
    if (d == self) continue;
    comm.send(d, tag, std::move(outgoing[static_cast<std::size_t>(d)]));
  }
  // Drain in ascending source order: the one canonical merge order.
  for (int s = 0; s < size; ++s) {
    if (s == self) continue;
    incoming[static_cast<std::size_t>(s)] = comm.recv(s, tag);
  }
  return incoming;
}

}  // namespace focus::mpr
