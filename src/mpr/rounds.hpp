// Batched communication rounds for symmetric (non-master/worker) protocols.
//
// The distributed-index overlapper (DESIGN.md §6c) exchanges large batches of
// small records — k-mer postings, seed probes, candidate hits — between every
// pair of ranks. alltoall_round() is the single collective shape all of its
// phases use: every rank contributes one message per destination and receives
// one message per source, with a deterministic delivery order (ascending
// source rank) so downstream processing is a pure function of the inputs.
//
// Framing: callers pack homogeneous trivially-copyable record vectors with
// Message::pack_vector. The round itself adds no framing bytes — each
// (round, src, dst) slot is exactly one Message — so the CRC32 frame checksum
// of the runtime covers the records directly.
#pragma once

#include <vector>

#include "mpr/message.hpp"
#include "mpr/runtime.hpp"

namespace focus::mpr {

/// One batched exchange round: rank r's `outgoing[d]` is delivered to rank d;
/// the returned vector holds one message per source rank (index = source).
/// The self slot is moved across without touching the network, mirroring an
/// MPI_Alltoall local copy. All sends are posted eagerly before any receive,
/// so the round cannot deadlock; receives drain in ascending source-rank
/// order, which fixes the merge order for every caller. Every live rank must
/// call this with the same `tag`, exactly once per round.
std::vector<Message> alltoall_round(Comm& comm, std::vector<Message> outgoing,
                                    int tag);

/// Delta-frame exchange for the symmetric owner-computes drivers: rank r's
/// `buckets[d]` (records destined for rank d, e.g. node removals routed to
/// the node's owner) are shipped in one alltoall round; the return value is
/// the arrived records concatenated in ascending source-rank order — a total
/// order independent of scheduling, so owner-side applies are deterministic.
template <typename Rec>
std::vector<Rec> exchange_deltas(Comm& comm,
                                 const std::vector<std::vector<Rec>>& buckets,
                                 int tag) {
  FOCUS_CHECK(buckets.size() == static_cast<std::size_t>(comm.size()),
              "one delta bucket per rank required");
  std::vector<Message> outgoing(buckets.size());
  for (std::size_t d = 0; d < buckets.size(); ++d) {
    outgoing[d].pack_vector(buckets[d]);
  }
  auto incoming = alltoall_round(comm, std::move(outgoing), tag);
  std::vector<Rec> merged;
  for (auto& msg : incoming) {
    auto recs = msg.unpack_vector<Rec>();
    FOCUS_CHECK(msg.fully_consumed(), "trailing bytes in delta frame");
    merged.insert(merged.end(), recs.begin(), recs.end());
  }
  return merged;
}

}  // namespace focus::mpr
