// Batched communication rounds for symmetric (non-master/worker) protocols.
//
// The distributed-index overlapper (DESIGN.md §6c) exchanges large batches of
// small records — k-mer postings, seed probes, candidate hits — between every
// pair of ranks. alltoall_round() is the single collective shape all of its
// phases use: every rank contributes one message per destination and receives
// one message per source, with a deterministic delivery order (ascending
// source rank) so downstream processing is a pure function of the inputs.
//
// Framing: callers pack homogeneous trivially-copyable record vectors with
// Message::pack_vector. The round itself adds no framing bytes — each
// (round, src, dst) slot is exactly one Message — so the CRC32 frame checksum
// of the runtime covers the records directly.
#pragma once

#include <vector>

#include "mpr/message.hpp"
#include "mpr/runtime.hpp"

namespace focus::mpr {

/// One batched exchange round: rank r's `outgoing[d]` is delivered to rank d;
/// the returned vector holds one message per source rank (index = source).
/// The self slot is moved across without touching the network, mirroring an
/// MPI_Alltoall local copy. All sends are posted eagerly before any receive,
/// so the round cannot deadlock; receives drain in ascending source-rank
/// order, which fixes the merge order for every caller. Every live rank must
/// call this with the same `tag`, exactly once per round.
std::vector<Message> alltoall_round(Comm& comm, std::vector<Message> outgoing,
                                    int tag);

}  // namespace focus::mpr
