// mpr — a message-passing runtime standing in for MPI.
//
// Focus's distributed algorithms (paper §IV–V) are written against this
// rank/message API exactly as they would be against MPI: SPMD functions
// receive a Comm bound to their rank, exchange typed byte messages, and
// synchronize with barriers and collectives. Ranks execute as preemptively
// scheduled threads inside one process; see cost_model.hpp for how virtual
// time reproduces cluster timing behaviour on a single-core host.
//
// Determinism contract: recv() requires an explicit (source, tag), all ranks
// call collectives in the same order, and virtual clocks advance only through
// explicit charges and message causality — so a run's makespan is a pure
// function of (algorithm, input, cost model), independent of host scheduling.
//
// Fault model (DESIGN.md §7): a FaultPlan injects crashes, drops, duplicates,
// corruption and delays as a pure function of (seed, rank, op number), so the
// determinism contract extends to faulty runs. Detection is built in:
//   * every frame carries a CRC32 checksum — a corrupted payload surfaces as
//     a typed CorruptMessage error, never a garbage unpack;
//   * recv() from a terminated rank raises RankFailed instead of blocking
//     forever;
//   * try_recv() adds a virtual-time deadline: when the runtime proves no
//     message can ever arrive (the sender died, or every rank is blocked and
//     starved — a terminal configuration), the receive reports kTimeout and
//     charges the deadline to the caller's clock. Terminal configurations of
//     a deterministic program are unique, so timeouts are deterministic too;
//     the guarantee is exact when a single rank (the master) performs timed
//     receives, which is the master/worker pattern of the drivers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "mpr/cost_model.hpp"
#include "mpr/fault.hpp"
#include "mpr/message.hpp"

namespace focus::mpr {

class Runtime;

/// Aggregate outcome of one SPMD run.
struct RunStats {
  /// Simulated makespan: max over ranks of the final virtual clock (seconds).
  double makespan = 0.0;
  /// Final virtual clock per rank.
  std::vector<double> rank_vtime;
  /// Total delivered point-to-point messages (collectives decompose into
  /// p2p; dropped messages are not delivered, duplicates count twice).
  std::uint64_t messages = 0;
  /// Total payload bytes delivered.
  std::uint64_t bytes = 0;
  /// Real wall-clock duration of the run (host-dependent; for reference).
  double wall_seconds = 0.0;
  /// Phase replays performed by recovery drivers (Comm::note_retry).
  std::uint64_t retries = 0;
  /// Ranks that died of injected faults (RankFailed) while a plan was active.
  int ranks_failed = 0;
  /// Virtual time spent on failure detection and recovery: timed-out receive
  /// deadlines plus explicit Comm::charge_recovery backoff.
  double recovery_vtime = 0.0;
};

/// Outcome of a timed receive.
enum class RecvStatus { kOk, kTimeout, kCorrupt };

struct RecvResult {
  RecvStatus status = RecvStatus::kOk;
  Message msg;
};

/// Per-rank communication handle passed to the SPMD function.
class Comm {
 public:
  Rank rank() const { return rank_; }
  int size() const;
  const CostModel& cost() const;

  /// Advance this rank's virtual clock by `work_units` of compute.
  void charge(double work_units);

  /// Advance this rank's virtual clock by raw seconds.
  void advance_vtime(double seconds);

  double vtime() const { return clock_; }

  /// Asynchronous (eager) send. Charges the sender one message latency of
  /// CPU overhead; the payload arrives at the receiver no earlier than
  /// send_clock + alpha + beta * bytes.
  void send(Rank dst, int tag, Message msg);

  /// Blocking receive of the next message from (src, tag), in send order.
  /// Throws CorruptMessage on a checksum mismatch and RankFailed when the
  /// sender terminated without the message ever arriving.
  Message recv(Rank src, int tag);

  /// Receive with failure detection: returns kTimeout (charging
  /// `timeout_vtime` to this rank's clock and the run's recovery_vtime)
  /// once the runtime proves no message from (src, tag) can ever arrive,
  /// and kCorrupt instead of throwing on a checksum mismatch.
  RecvResult try_recv(Rank src, int tag, double timeout_vtime);

  /// Record one recovery retry (phase replay) in RunStats::retries.
  void note_retry();

  /// Advance this rank's clock by recovery backoff, charged to
  /// RunStats::recovery_vtime.
  void charge_recovery(double seconds);

  /// Synchronize all *live* ranks; clocks advance to the global max plus a
  /// log2(p) tree latency. Ranks that terminated are not waited for.
  void barrier();

  /// Binomial-tree broadcast from root; every rank returns the payload.
  Message broadcast(Message msg, Rank root);

  /// Binomial-tree gather; at root returns size() messages ordered by rank,
  /// elsewhere returns an empty vector.
  std::vector<Message> gather(Message local, Rank root);

  /// All-reduce over i64 sum / i64 max / f64 max (tree up + broadcast down).
  std::int64_t allreduce_sum(std::int64_t v);
  std::int64_t allreduce_max(std::int64_t v);
  double allreduce_fmax(double v);

 private:
  friend class Runtime;
  Comm(Runtime* rt, Rank rank) : rt_(rt), rank_(rank) {}

  int next_collective_tag(int op);

  /// Advances the op counter and consults the fault plan; throws RankFailed
  /// on a crash decision. No-op (and no counter advance) with an empty plan.
  FaultDecision fault_point(const char* op_name);

  Runtime* rt_;
  Rank rank_;
  double clock_ = 0.0;
  std::uint32_t collective_seq_ = 0;
  std::uint64_t op_seq_ = 0;
};

/// Owns the mailboxes and barrier; executes SPMD functions over n ranks.
class Runtime {
 public:
  explicit Runtime(int nranks, CostModel cost = {}, FaultPlan plan = {});

  int size() const { return nranks_; }
  const CostModel& cost() const { return cost_; }
  const FaultPlan& plan() const { return plan_; }

  /// Runs fn on every rank (as threads), joins, and returns timing stats.
  ///
  /// Error aggregation: if ranks threw, the lowest-rank exception is the
  /// primary — rethrown as-is when it is the only one, otherwise wrapped in
  /// a composite Error whose message lists every failed rank and its
  /// what(). While a fault plan is active, RankFailed exceptions are the
  /// expected injected outcome: they are counted in RunStats::ranks_failed
  /// and excluded from the composite (recovery is the drivers' job).
  RunStats run(const std::function<void(Comm&)>& fn);

  /// One-shot convenience: Runtime(nranks, cost, plan).run(fn).
  static RunStats execute(int nranks, const std::function<void(Comm&)>& fn,
                          CostModel cost = {}, FaultPlan plan = {});

 private:
  friend class Comm;

  enum class RankState : std::uint8_t {
    kRunning,
    kBlockedRecv,
    kBlockedBarrier,
    kDone,
    kFailed,
  };

  enum class TakeStatus { kGot, kTimeout };

  struct Envelope {
    Message payload;
    double arrival_floor;  // sender clock at send + alpha + beta * bytes
    std::uint32_t crc;     // checksum taken before fault injection
  };

  struct Mailbox {
    std::condition_variable cv;  // waits on Runtime::mu_
    std::map<std::pair<Rank, int>, std::deque<Envelope>> queues;
  };

  void deliver(Rank dst, Rank src, int tag, Envelope env);
  TakeStatus take(Rank self, Rank src, int tag, bool timed, Envelope* out);
  void barrier_wait(Comm& comm);
  void finish_rank(Rank rank, bool failed);
  void corrupt_payload(Message& msg, Rank rank, std::uint64_t op) const;
  void note_recovery(std::uint64_t retries, double vtime);

  /// Must hold mu_. If the configuration is terminal (no rank can make
  /// progress), fire every starved timed receive as one deterministic batch.
  void detect_deadlock_locked();

  /// Must hold mu_. Releases the barrier generation and wakes the waiters.
  void release_barrier_locked();

  bool terminated_locked(Rank r) const {
    return rank_state_[static_cast<std::size_t>(r)] == RankState::kDone ||
           rank_state_[static_cast<std::size_t>(r)] == RankState::kFailed;
  }

  int nranks_;
  CostModel cost_;
  FaultPlan plan_;
  bool plan_active_;

  // One mutex guards mailboxes, rank states, the barrier and the counters:
  // the runtime simulates a cluster, it is not itself a hot path, and a
  // single lock makes the deadlock/quiescence detection a consistent
  // snapshot by construction.
  std::mutex mu_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankState> rank_state_;
  std::vector<std::pair<Rank, int>> awaited_;  // key a kBlockedRecv rank waits on
  std::vector<std::uint8_t> timed_wait_;       // that wait has a deadline
  std::vector<std::uint8_t> timeout_fired_;    // deadline fired; consume on wake
  int active_count_ = 0;

  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_clock_ = 0.0;
  double barrier_release_clock_ = 0.0;

  std::uint64_t stat_messages_ = 0;
  std::uint64_t stat_bytes_ = 0;
  std::uint64_t stat_retries_ = 0;
  double stat_recovery_vtime_ = 0.0;
};

}  // namespace focus::mpr
