// mpr — a message-passing runtime standing in for MPI.
//
// Focus's distributed algorithms (paper §IV–V) are written against this
// rank/message API exactly as they would be against MPI: SPMD functions
// receive a Comm bound to their rank, exchange typed byte messages, and
// synchronize with barriers and collectives. Ranks execute as preemptively
// scheduled threads inside one process; see cost_model.hpp for how virtual
// time reproduces cluster timing behaviour on a single-core host.
//
// Determinism contract: recv() requires an explicit (source, tag), all ranks
// call collectives in the same order, and virtual clocks advance only through
// explicit charges and message causality — so a run's makespan is a pure
// function of (algorithm, input, cost model), independent of host scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "mpr/cost_model.hpp"
#include "mpr/message.hpp"

namespace focus::mpr {

class Runtime;

/// Aggregate outcome of one SPMD run.
struct RunStats {
  /// Simulated makespan: max over ranks of the final virtual clock (seconds).
  double makespan = 0.0;
  /// Final virtual clock per rank.
  std::vector<double> rank_vtime;
  /// Total point-to-point messages (collectives decompose into p2p).
  std::uint64_t messages = 0;
  /// Total payload bytes sent.
  std::uint64_t bytes = 0;
  /// Real wall-clock duration of the run (host-dependent; for reference).
  double wall_seconds = 0.0;
};

/// Per-rank communication handle passed to the SPMD function.
class Comm {
 public:
  Rank rank() const { return rank_; }
  int size() const;
  const CostModel& cost() const;

  /// Advance this rank's virtual clock by `work_units` of compute.
  void charge(double work_units);

  /// Advance this rank's virtual clock by raw seconds.
  void advance_vtime(double seconds);

  double vtime() const { return clock_; }

  /// Asynchronous (eager) send. Charges the sender one message latency of
  /// CPU overhead; the payload arrives at the receiver no earlier than
  /// send_clock + alpha + beta * bytes.
  void send(Rank dst, int tag, Message msg);

  /// Blocking receive of the next message from (src, tag), in send order.
  Message recv(Rank src, int tag);

  /// Synchronize all ranks; clocks advance to the global max plus a
  /// log2(p) tree latency.
  void barrier();

  /// Binomial-tree broadcast from root; every rank returns the payload.
  Message broadcast(Message msg, Rank root);

  /// Binomial-tree gather; at root returns size() messages ordered by rank,
  /// elsewhere returns an empty vector.
  std::vector<Message> gather(Message local, Rank root);

  /// All-reduce over i64 sum / i64 max / f64 max (tree up + broadcast down).
  std::int64_t allreduce_sum(std::int64_t v);
  std::int64_t allreduce_max(std::int64_t v);
  double allreduce_fmax(double v);

 private:
  friend class Runtime;
  Comm(Runtime* rt, Rank rank) : rt_(rt), rank_(rank) {}

  int next_collective_tag(int op);

  Runtime* rt_;
  Rank rank_;
  double clock_ = 0.0;
  std::uint32_t collective_seq_ = 0;
};

/// Owns the mailboxes and barrier; executes SPMD functions over n ranks.
class Runtime {
 public:
  explicit Runtime(int nranks, CostModel cost = {});

  int size() const { return nranks_; }
  const CostModel& cost() const { return cost_; }

  /// Runs fn on every rank (as threads), joins, and returns timing stats.
  /// If any rank throws, the lowest-rank exception is rethrown after all
  /// ranks have been joined.
  RunStats run(const std::function<void(Comm&)>& fn);

  /// One-shot convenience: Runtime(nranks).run(fn).
  static RunStats execute(int nranks, const std::function<void(Comm&)>& fn,
                          CostModel cost = {});

 private:
  friend class Comm;

  struct Envelope {
    Message payload;
    double arrival_floor;  // sender clock at send + alpha + beta * bytes
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<Rank, int>, std::deque<Envelope>> queues;
  };

  void deliver(Rank dst, Rank src, int tag, Envelope env);
  Envelope take(Rank self, Rank src, int tag);
  void barrier_wait(Comm& comm);

  int nranks_;
  CostModel cost_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_clock_ = 0.0;
  double barrier_release_clock_ = 0.0;

  std::mutex stats_mu_;
  std::uint64_t stat_messages_ = 0;
  std::uint64_t stat_bytes_ = 0;
};

}  // namespace focus::mpr
