// Virtual-time cost model for the message-passing runtime.
//
// The paper's experiments ran MPI on a 452-node cluster; this reproduction
// runs on a single core. To recover the *shape* of the paper's speedup and
// runtime curves deterministically, every rank carries a virtual clock:
//
//   * compute  — algorithms call Comm::charge(work_units); the clock advances
//     by gamma * units. Work units are deterministic operation counts (edges
//     scanned, cells filled), so virtual time is independent of the host.
//   * messages — a point-to-point message of b bytes completes at
//     max(receiver_clock, sender_clock_at_send + alpha + beta * b), the
//     classic alpha–beta (Hockney) model.
//   * barriers/collectives — synchronize clocks to the participant max plus a
//     tree-latency term alpha * ceil(log2 p).
//
// The reported makespan of a run is the maximum final clock over ranks:
// exactly the quantity a wall clock would measure on a real cluster with
// these machine constants.
#pragma once

#include <cmath>

namespace focus::mpr {

struct CostModel {
  /// Per-message latency, seconds. Default ≈ small-cluster interconnect.
  double alpha = 5e-6;
  /// Per-byte transfer time, seconds/byte (≈ 1 GB/s link).
  double beta = 1e-9;
  /// Per-work-unit compute time, seconds/unit. A "unit" is roughly one inner
  /// loop iteration (an edge relaxation, a DP cell, a comparison).
  double gamma = 1e-8;

  double message_cost(std::size_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }

  double tree_latency(int participants) const {
    if (participants <= 1) return 0.0;
    return alpha * std::ceil(std::log2(static_cast<double>(participants)));
  }

  double compute_cost(double work_units) const { return gamma * work_units; }
};

}  // namespace focus::mpr
