#include "mpr/fault.hpp"

#include <string>

#include "common/checksum.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "mpr/message.hpp"

namespace focus::mpr {

namespace {

/// One draw of the per-(rank, op) hash stream, as a real in [0, 1).
double hash_real(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

// Env values arrive through an EnvSnapshot (common/env.hpp — the single
// getenv site); the strict parsers there enforce the operator-error
// contract: a set-but-malformed knob throws naming the variable and the
// offending value, never a silent fallback.

double snapshot_rate(const char* name,
                     const std::optional<std::string>& value) {
  if (!value.has_value()) return 0.0;
  return env::parse_rate(name, *value);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return common::crc32(data, n);
}

FaultDecision FaultPlan::decide(Rank rank, std::uint64_t op) const {
  FaultDecision d;
  for (const CrashPoint& cp : crashes) {
    if (cp.rank == rank && cp.op == op) {
      d.crash = true;
      return d;
    }
  }
  if (p_crash == 0.0 && p_drop == 0.0 && p_duplicate == 0.0 &&
      p_corrupt == 0.0 && p_delay == 0.0) {
    return d;
  }
  // Independent stream per (seed, rank, op); draws consumed in fixed order
  // so adding a rate never perturbs the draws of the other fault kinds.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (static_cast<std::uint64_t>(rank) + 1);
  state = splitmix64(state) ^ op;
  if (hash_real(state) < p_crash) {
    d.crash = true;
    return d;
  }
  const double drop_draw = hash_real(state);
  const double dup_draw = hash_real(state);
  const double corrupt_draw = hash_real(state);
  const double delay_draw = hash_real(state);
  if (drop_draw < p_drop) {
    d.drop = true;
  } else if (dup_draw < p_duplicate) {
    d.duplicate = true;
  } else if (corrupt_draw < p_corrupt) {
    d.corrupt = true;
  } else if (delay_draw < p_delay) {
    d.delay = delay_vtime;
  }
  return d;
}

FaultPlan FaultPlan::from_env() {
  return from_env(EnvSnapshot::capture());
}

FaultPlan FaultPlan::from_env(const EnvSnapshot& env) {
  FaultPlan plan;
  if (!env.fault_seed.has_value()) {
    // A rate knob without the seed would be silently inert — the operator
    // believes faults are being injected when none are. Reject it instead.
    const std::pair<const char*, const std::optional<std::string>&> rates[] = {
        {"FOCUS_FAULT_CRASH", env.fault_crash},
        {"FOCUS_FAULT_DROP", env.fault_drop},
        {"FOCUS_FAULT_DUP", env.fault_dup},
        {"FOCUS_FAULT_CORRUPT", env.fault_corrupt},
        {"FOCUS_FAULT_DELAY", env.fault_delay},
    };
    for (const auto& [name, value] : rates) {
      if (value.has_value()) {
        FOCUS_THROW(std::string(name) +
                    " is set but has no effect without FOCUS_FAULT_SEED");
      }
    }
    return plan;
  }
  plan.seed = env::parse_u64("FOCUS_FAULT_SEED", *env.fault_seed);
  plan.p_crash = snapshot_rate("FOCUS_FAULT_CRASH", env.fault_crash);
  plan.p_drop = snapshot_rate("FOCUS_FAULT_DROP", env.fault_drop);
  plan.p_duplicate = snapshot_rate("FOCUS_FAULT_DUP", env.fault_dup);
  plan.p_corrupt = snapshot_rate("FOCUS_FAULT_CORRUPT", env.fault_corrupt);
  plan.p_delay = snapshot_rate("FOCUS_FAULT_DELAY", env.fault_delay);
  // A bare seed with no rates still means "inject something": default to a
  // light mix of every recoverable fault kind.
  if (plan.empty()) {
    plan.p_drop = plan.p_duplicate = plan.p_corrupt = plan.p_delay = 0.01;
  }
  return plan;
}

FaultConfig FaultConfig::from_env() {
  return from_env(EnvSnapshot::capture());
}

FaultConfig FaultConfig::from_env(const EnvSnapshot& env) {
  FaultConfig config;
  if (env.fault_max_retries.has_value()) {
    const std::uint64_t retries =
        env::parse_u64("FOCUS_FAULT_MAX_RETRIES", *env.fault_max_retries);
    if (retries == 0 || retries > 1000) {
      FOCUS_THROW(std::string("FOCUS_FAULT_MAX_RETRIES must be in [1, 1000]") +
                  ", got '" + *env.fault_max_retries + "'");
    }
    config.max_retries = static_cast<int>(retries);
  }
  if (env.fault_recv_timeout.has_value()) {
    const double timeout =
        env::parse_double("FOCUS_FAULT_RECV_TIMEOUT", *env.fault_recv_timeout);
    if (!(timeout > 0.0)) {
      FOCUS_THROW(std::string("FOCUS_FAULT_RECV_TIMEOUT must be a positive "
                              "virtual-time interval, got '") +
                  *env.fault_recv_timeout + "'");
    }
    config.recv_timeout_vtime = timeout;
  }
  return config;
}

std::uint32_t Message::checksum() const {
  return crc32(bytes_.data(), bytes_.size());
}

}  // namespace focus::mpr
