#include "mpr/fault.hpp"

#include <cstdlib>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "mpr/message.hpp"

namespace focus::mpr {

namespace {

/// One draw of the per-(rank, op) hash stream, as a real in [0, 1).
double hash_real(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double env_rate(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return 0.0;
  return std::strtod(v, nullptr);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return common::crc32(data, n);
}

FaultDecision FaultPlan::decide(Rank rank, std::uint64_t op) const {
  FaultDecision d;
  for (const CrashPoint& cp : crashes) {
    if (cp.rank == rank && cp.op == op) {
      d.crash = true;
      return d;
    }
  }
  if (p_crash == 0.0 && p_drop == 0.0 && p_duplicate == 0.0 &&
      p_corrupt == 0.0 && p_delay == 0.0) {
    return d;
  }
  // Independent stream per (seed, rank, op); draws consumed in fixed order
  // so adding a rate never perturbs the draws of the other fault kinds.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (static_cast<std::uint64_t>(rank) + 1);
  state = splitmix64(state) ^ op;
  if (hash_real(state) < p_crash) {
    d.crash = true;
    return d;
  }
  const double drop_draw = hash_real(state);
  const double dup_draw = hash_real(state);
  const double corrupt_draw = hash_real(state);
  const double delay_draw = hash_real(state);
  if (drop_draw < p_drop) {
    d.drop = true;
  } else if (dup_draw < p_duplicate) {
    d.duplicate = true;
  } else if (corrupt_draw < p_corrupt) {
    d.corrupt = true;
  } else if (delay_draw < p_delay) {
    d.delay = delay_vtime;
  }
  return d;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  const char* seed_env = std::getenv("FOCUS_FAULT_SEED");
  if (seed_env == nullptr) return plan;
  plan.seed = std::strtoull(seed_env, nullptr, 10);
  plan.p_crash = env_rate("FOCUS_FAULT_CRASH");
  plan.p_drop = env_rate("FOCUS_FAULT_DROP");
  plan.p_duplicate = env_rate("FOCUS_FAULT_DUP");
  plan.p_corrupt = env_rate("FOCUS_FAULT_CORRUPT");
  plan.p_delay = env_rate("FOCUS_FAULT_DELAY");
  // A bare seed with no rates still means "inject something": default to a
  // light mix of every recoverable fault kind.
  if (plan.empty()) {
    plan.p_drop = plan.p_duplicate = plan.p_corrupt = plan.p_delay = 0.01;
  }
  return plan;
}

std::uint32_t Message::checksum() const {
  return crc32(bytes_.data(), bytes_.size());
}

}  // namespace focus::mpr
