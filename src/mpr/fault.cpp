#include "mpr/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "mpr/message.hpp"

namespace focus::mpr {

namespace {

/// One draw of the per-(rank, op) hash stream, as a real in [0, 1).
double hash_real(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

// Strict env parsers: a set-but-malformed knob is an operator error, never a
// silent fallback — the error names the variable and the offending value
// (same contract as the malformed-FASTQ diagnostics in io/preprocess).

double env_double(const char* name, const char* v) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (*v == '\0' || end == nullptr || *end != '\0' || errno == ERANGE) {
    FOCUS_THROW(std::string(name) + " must be a number, got '" + v + "'");
  }
  return parsed;
}

double env_rate(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return 0.0;
  const double rate = env_double(name, v);
  if (!(rate >= 0.0 && rate <= 1.0)) {
    FOCUS_THROW(std::string(name) + " must be a probability in [0, 1], got '" +
                v + "'");
  }
  return rate;
}

std::uint64_t env_u64(const char* name, const char* v) {
  for (const char* c = v; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') {
      FOCUS_THROW(std::string(name) +
                  " must be an unsigned integer, got '" + v + "'");
    }
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t parsed = std::strtoull(v, &end, 10);
  if (*v == '\0' || end == nullptr || *end != '\0' || errno == ERANGE) {
    FOCUS_THROW(std::string(name) +
                " must be an unsigned integer, got '" + v + "'");
  }
  return parsed;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return common::crc32(data, n);
}

FaultDecision FaultPlan::decide(Rank rank, std::uint64_t op) const {
  FaultDecision d;
  for (const CrashPoint& cp : crashes) {
    if (cp.rank == rank && cp.op == op) {
      d.crash = true;
      return d;
    }
  }
  if (p_crash == 0.0 && p_drop == 0.0 && p_duplicate == 0.0 &&
      p_corrupt == 0.0 && p_delay == 0.0) {
    return d;
  }
  // Independent stream per (seed, rank, op); draws consumed in fixed order
  // so adding a rate never perturbs the draws of the other fault kinds.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ (static_cast<std::uint64_t>(rank) + 1);
  state = splitmix64(state) ^ op;
  if (hash_real(state) < p_crash) {
    d.crash = true;
    return d;
  }
  const double drop_draw = hash_real(state);
  const double dup_draw = hash_real(state);
  const double corrupt_draw = hash_real(state);
  const double delay_draw = hash_real(state);
  if (drop_draw < p_drop) {
    d.drop = true;
  } else if (dup_draw < p_duplicate) {
    d.duplicate = true;
  } else if (corrupt_draw < p_corrupt) {
    d.corrupt = true;
  } else if (delay_draw < p_delay) {
    d.delay = delay_vtime;
  }
  return d;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  const char* seed_env = std::getenv("FOCUS_FAULT_SEED");
  if (seed_env == nullptr) {
    // A rate knob without the seed would be silently inert — the operator
    // believes faults are being injected when none are. Reject it instead.
    for (const char* name : {"FOCUS_FAULT_CRASH", "FOCUS_FAULT_DROP",
                             "FOCUS_FAULT_DUP", "FOCUS_FAULT_CORRUPT",
                             "FOCUS_FAULT_DELAY"}) {
      if (std::getenv(name) != nullptr) {
        FOCUS_THROW(std::string(name) +
                    " is set but has no effect without FOCUS_FAULT_SEED");
      }
    }
    return plan;
  }
  plan.seed = env_u64("FOCUS_FAULT_SEED", seed_env);
  plan.p_crash = env_rate("FOCUS_FAULT_CRASH");
  plan.p_drop = env_rate("FOCUS_FAULT_DROP");
  plan.p_duplicate = env_rate("FOCUS_FAULT_DUP");
  plan.p_corrupt = env_rate("FOCUS_FAULT_CORRUPT");
  plan.p_delay = env_rate("FOCUS_FAULT_DELAY");
  // A bare seed with no rates still means "inject something": default to a
  // light mix of every recoverable fault kind.
  if (plan.empty()) {
    plan.p_drop = plan.p_duplicate = plan.p_corrupt = plan.p_delay = 0.01;
  }
  return plan;
}

FaultConfig FaultConfig::from_env() {
  FaultConfig config;
  if (const char* v = std::getenv("FOCUS_FAULT_MAX_RETRIES")) {
    const std::uint64_t retries = env_u64("FOCUS_FAULT_MAX_RETRIES", v);
    if (retries == 0 || retries > 1000) {
      FOCUS_THROW(std::string("FOCUS_FAULT_MAX_RETRIES must be in [1, 1000]") +
                  ", got '" + v + "'");
    }
    config.max_retries = static_cast<int>(retries);
  }
  if (const char* v = std::getenv("FOCUS_FAULT_RECV_TIMEOUT")) {
    const double timeout = env_double("FOCUS_FAULT_RECV_TIMEOUT", v);
    if (!(timeout > 0.0)) {
      FOCUS_THROW(std::string("FOCUS_FAULT_RECV_TIMEOUT must be a positive "
                              "virtual-time interval, got '") +
                  v + "'");
    }
    config.recv_timeout_vtime = timeout;
  }
  return config;
}

std::uint32_t Message::checksum() const {
  return crc32(bytes_.data(), bytes_.size());
}

}  // namespace focus::mpr
