// Shared fault-tolerant phase machinery (DESIGN.md §7 / §7b), extracted from
// the dist drivers so every pipeline stage — preprocess, overlap, partition,
// simplify, traverse, variants, GFA emission — runs the same two protocols:
//
//  * master/worker (§7): rank 0 commands scans over replayable partitions,
//    collects CRC-framed records, detects dead workers by quiescence timeout
//    and replays the phase with orphaned partitions reassigned round-robin
//    over the live ranks, bounded by FaultConfig::max_retries.
//  * symmetric (§7b): coordination is a *role* — whichever live rank
//    currently coordinates runs the same collect loop but commits each
//    completed phase to a write-ahead log modeling replicated stable
//    storage; on the coordinator's death the lowest surviving rank takes
//    over, fast-forwards through the log and resumes at the first
//    uncommitted phase. No rank is irreplaceable.
//
// Commands and record frames flow over two user tags per protocol. Every
// scan command carries a monotone sequence number (workers discard
// duplicated commands without re-scanning) and every record frame carries
// its (phase, round) so stale frames from failed rounds are discarded.
//
// Two extensions over the original in-driver machinery:
//  * FtOrder — the canonical order collected records are returned in.
//    kRankMajor reproduces the fault-free gather order of the graph drivers
//    (partitions sorted by (p % size, p)); kAscending returns plain
//    partition order, which is what block-decomposed drivers (preprocess
//    read blocks, GFA line blocks, bisection regions) need to match their
//    serial output byte for byte.
//  * an optional per-partition state blob packed into scan commands
//    (pack_state / worker-side unpack hook), for drivers whose scan inputs
//    evolve across phases (the mlpart region lists): workers stay stateless
//    and every scan is a pure function of the command payload, so replays
//    need no shared-state reconciliation.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "mpr/fault.hpp"
#include "mpr/message.hpp"
#include "mpr/runtime.hpp"

namespace focus::mpr {

// Wire tags of the two protocols; each driver runs in its own Runtime, so
// the tags are shared across stages without collision.
inline constexpr int kFtTagCmd = 100;
inline constexpr int kFtTagRec = 101;
inline constexpr int kFtTagSymCmd = 120;
inline constexpr int kFtTagSymRec = 121;
inline constexpr std::uint32_t kFtCmdScan = 1;
inline constexpr std::uint32_t kFtCmdDone = 2;

/// Canonical order of collected per-partition records (see header comment).
enum class FtOrder { kRankMajor, kAscending };

/// Optional hook appending partition `p`'s scan state to a command frame.
using FtPackState = std::function<void(std::uint32_t p, Message&)>;
/// Worker-side mirror: consume partition `p`'s state from the command.
using FtUnpackState =
    std::function<void(std::uint32_t phase, std::uint32_t p, Message&)>;

/// Partition assignment for one round: every partition goes to its original
/// owner (id mod nranks) when that rank is live; partitions orphaned by dead
/// ranks are redistributed round-robin over the live ranks (coordinator
/// included), in ascending rank order — a pure function of the live set, so
/// replays are deterministic. The coordinating rank is always in the live
/// set, so at least one rank is available.
inline std::vector<std::vector<std::uint32_t>> ft_assign(
    std::uint32_t nparts, const std::vector<std::uint8_t>& live, int size) {
  std::vector<std::vector<std::uint32_t>> parts_for_rank(
      static_cast<std::size_t>(size));
  std::vector<int> live_ranks;
  for (int r = 0; r < size; ++r) {
    if (live[static_cast<std::size_t>(r)]) live_ranks.push_back(r);
  }
  std::vector<std::uint32_t> orphans;
  for (std::uint32_t p = 0; p < nparts; ++p) {
    const int owner = static_cast<int>(p % static_cast<std::uint32_t>(size));
    if (live[static_cast<std::size_t>(owner)]) {
      parts_for_rank[static_cast<std::size_t>(owner)].push_back(p);
    } else {
      orphans.push_back(p);
    }
  }
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    parts_for_rank[static_cast<std::size_t>(live_ranks[i % live_ranks.size()])]
        .push_back(orphans[i]);
  }
  return parts_for_rank;
}

struct FtMasterState {
  std::vector<std::uint8_t> live;  // live[0] is the master itself
  std::uint64_t cmd_seq = 0;
};

namespace detail {

/// Canonical emission of the per-partition record slots.
template <typename Rec>
std::vector<Rec> ft_emit(std::vector<std::optional<Rec>>& by_part, int size,
                         FtOrder order) {
  const auto nparts = static_cast<std::uint32_t>(by_part.size());
  std::vector<Rec> out;
  out.reserve(by_part.size());
  const auto take = [&](std::uint32_t p) {
    auto& slot = by_part[p];
    FOCUS_CHECK(slot.has_value(), "partition missing from phase records");
    out.push_back(std::move(*slot));
  };
  if (order == FtOrder::kAscending) {
    for (std::uint32_t p = 0; p < nparts; ++p) take(p);
  } else {
    for (int r = 0; r < size; ++r) {
      for (std::uint32_t p = static_cast<std::uint32_t>(r); p < nparts;
           p += static_cast<std::uint32_t>(size)) {
        take(p);
      }
    }
  }
  return out;
}

}  // namespace detail

/// One worker-record / master-collect phase under the fault-tolerant
/// protocol. Returns the per-partition records in the canonical order
/// selected by `order` — so downstream applies see the exact record
/// sequence of a fault-free run, regardless of which surviving rank
/// actually scanned each partition. Replays the whole phase on a worker
/// timeout (marking it dead) or a corrupt frame (worker stays live), up to
/// FaultConfig::max_retries replays.
template <typename Rec>
std::vector<Rec> ft_collect_phase(
    Comm& comm, FtMasterState& st, std::uint32_t nparts, std::uint32_t phase,
    const FaultConfig& fault,
    const std::function<Rec(std::uint32_t, double*)>& scan_one,
    const std::function<Rec(Message&)>& unpack_one,
    FtOrder order = FtOrder::kRankMajor,
    const FtPackState& pack_state = nullptr) {
  const int size = comm.size();
  for (std::uint32_t round = 0;; ++round) {
    FOCUS_CHECK(static_cast<int>(round) <= fault.max_retries,
                "fault recovery exhausted max_retries replays of a phase");
    const auto assign = ft_assign(nparts, st.live, size);
    for (int r = 1; r < size; ++r) {
      if (!st.live[static_cast<std::size_t>(r)]) continue;
      Message cmd;
      cmd.pack(kFtCmdScan);
      cmd.pack(++st.cmd_seq);
      cmd.pack(phase);
      cmd.pack(round);
      cmd.pack_vector(assign[static_cast<std::size_t>(r)]);
      if (pack_state) {
        for (const std::uint32_t p : assign[static_cast<std::size_t>(r)]) {
          pack_state(p, cmd);
        }
      }
      comm.send(r, kFtTagCmd, std::move(cmd));
    }

    std::vector<std::optional<Rec>> by_part(static_cast<std::size_t>(nparts));
    double work = 0.0;
    for (const std::uint32_t p : assign[0]) {
      by_part[p] = scan_one(p, &work);
    }
    comm.charge(work);

    bool failed = false;
    for (int r = 1; r < size && !failed; ++r) {
      if (!st.live[static_cast<std::size_t>(r)]) continue;
      for (;;) {
        auto res = comm.try_recv(r, kFtTagRec, fault.recv_timeout_vtime);
        if (res.status == RecvStatus::kTimeout) {
          st.live[static_cast<std::size_t>(r)] = 0;
          failed = true;
          break;
        }
        if (res.status == RecvStatus::kCorrupt) {
          failed = true;  // frame lost in transit; the worker itself is fine
          break;
        }
        const auto fphase = res.msg.unpack<std::uint32_t>();
        const auto fround = res.msg.unpack<std::uint32_t>();
        const auto count = res.msg.unpack<std::uint32_t>();
        if (fphase != phase || fround != round) continue;  // stale frame
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto p = res.msg.unpack<std::uint32_t>();
          FOCUS_CHECK(p < nparts, "record frame names an invalid partition");
          by_part[p] = unpack_one(res.msg);
        }
        FOCUS_CHECK(res.msg.fully_consumed(),
                    "trailing bytes in record frame");
        break;
      }
    }
    if (failed) {
      comm.note_retry();
      comm.charge_recovery(fault.recv_timeout_vtime *
                           static_cast<double>(round + 1));
      continue;
    }
    return detail::ft_emit(by_part, size, order);
  }
}

/// Worker loop shared by all drivers: execute scan commands until told to
/// stop. `scan_and_pack(phase, partition, frame, work)` runs one partition's
/// read-only scan and appends its records to the frame. When the master
/// packs per-partition state into commands, `unpack_state` consumes it (in
/// assignment order, before any scan runs).
inline void ft_worker_loop(
    Comm& comm,
    const std::function<void(std::uint32_t, std::uint32_t, Message&,
                             double*)>& scan_and_pack,
    const FtUnpackState& unpack_state = nullptr) {
  std::uint64_t last_seq = 0;
  for (;;) {
    Message cmd;
    try {
      cmd = comm.recv(0, kFtTagCmd);
    } catch (const CorruptMessage& e) {
      // A command this worker cannot decode means it cannot follow the
      // protocol any more: fail the rank and let the master reassign.
      throw RankFailed(e.what());
    }
    const auto kind = cmd.unpack<std::uint32_t>();
    if (kind == kFtCmdDone) {
      FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in done command");
      return;
    }
    FOCUS_CHECK(kind == kFtCmdScan, "unknown command kind");
    const auto seq = cmd.unpack<std::uint64_t>();
    const auto phase = cmd.unpack<std::uint32_t>();
    const auto round = cmd.unpack<std::uint32_t>();
    const auto parts = cmd.unpack_vector<std::uint32_t>();
    if (unpack_state) {
      for (const std::uint32_t p : parts) unpack_state(phase, p, cmd);
    }
    FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in scan command");
    if (seq <= last_seq) continue;  // duplicated command; already executed
    last_seq = seq;

    Message frame;
    frame.pack(phase);
    frame.pack(round);
    frame.pack(static_cast<std::uint32_t>(parts.size()));
    double work = 0.0;
    for (const std::uint32_t p : parts) {
      frame.pack(p);
      scan_and_pack(phase, p, frame, &work);
    }
    comm.charge(work);
    comm.send(0, kFtTagRec, std::move(frame));
  }
}

inline void ft_shutdown_workers(Comm& comm, const FtMasterState& st) {
  for (int r = 1; r < comm.size(); ++r) {
    if (!st.live[static_cast<std::size_t>(r)]) continue;
    Message done;
    done.pack(kFtCmdDone);
    comm.send(r, kFtTagCmd, std::move(done));
  }
}

// ---------------------------------------------------------------------------
// Symmetric fault-tolerant protocol (DESIGN.md §7b): rotating coordinator
// over a replicated write-ahead log.
// ---------------------------------------------------------------------------

/// Replicated write-ahead log shared by all ranks. The mutex stands in for
/// the replicated-storage commit protocol; `live` and `cmd_seq` ride along so
/// a successor inherits the failure detector's state and the command-sequence
/// high-water mark (workers discard stale duplicates by sequence number, so
/// the counter must survive the coordinator).
struct SymWal {
  struct Entry {
    Message payload;                  // canonical records, applied order
    std::vector<std::size_t> counts;  // driver-defined per-phase counters
  };
  std::mutex mu;
  std::vector<std::uint8_t> live;
  std::uint64_t cmd_seq = 0;
  std::vector<Entry> entries;
};

/// Durably commit one completed phase and charge the writer for replicating
/// the entry to every other live rank.
inline void sym_wal_commit(Comm& comm, SymWal& wal, SymWal::Entry entry) {
  const std::size_t bytes = entry.payload.size_bytes();
  int nlive = 0;
  {
    std::lock_guard<std::mutex> lock(wal.mu);
    for (const auto l : wal.live) nlive += l;
    wal.entries.push_back(std::move(entry));
  }
  comm.advance_vtime(static_cast<double>(nlive - 1) *
                     comm.cost().message_cost(bytes));
}

/// ft_collect_phase for the symmetric protocol: the collector is whichever
/// rank currently coordinates, and the live set / command sequence live in
/// the replicated log instead of coordinator-local state.
template <typename Rec>
std::vector<Rec> sym_collect_phase(
    Comm& comm, SymWal& wal, std::uint32_t nparts, std::uint32_t phase,
    const FaultConfig& fault,
    const std::function<Rec(std::uint32_t, double*)>& scan_one,
    const std::function<Rec(Message&)>& unpack_one,
    FtOrder order = FtOrder::kRankMajor,
    const FtPackState& pack_state = nullptr) {
  const int size = comm.size();
  const int self = comm.rank();
  for (std::uint32_t round = 0;; ++round) {
    FOCUS_CHECK(static_cast<int>(round) <= fault.max_retries,
                "fault recovery exhausted max_retries replays of a phase");
    std::vector<std::uint8_t> live;
    {
      std::lock_guard<std::mutex> lock(wal.mu);
      live = wal.live;
    }
    const auto assign = ft_assign(nparts, live, size);
    for (int r = 0; r < size; ++r) {
      if (r == self || !live[static_cast<std::size_t>(r)]) continue;
      Message cmd;
      cmd.pack(kFtCmdScan);
      {
        std::lock_guard<std::mutex> lock(wal.mu);
        cmd.pack(++wal.cmd_seq);
      }
      cmd.pack(phase);
      cmd.pack(round);
      cmd.pack_vector(assign[static_cast<std::size_t>(r)]);
      if (pack_state) {
        for (const std::uint32_t p : assign[static_cast<std::size_t>(r)]) {
          pack_state(p, cmd);
        }
      }
      comm.send(r, kFtTagSymCmd, std::move(cmd));
    }

    std::vector<std::optional<Rec>> by_part(static_cast<std::size_t>(nparts));
    double work = 0.0;
    for (const std::uint32_t p : assign[static_cast<std::size_t>(self)]) {
      by_part[p] = scan_one(p, &work);
    }
    comm.charge(work);

    bool failed = false;
    for (int r = 0; r < size && !failed; ++r) {
      if (r == self || !live[static_cast<std::size_t>(r)]) continue;
      for (;;) {
        auto res = comm.try_recv(r, kFtTagSymRec, fault.recv_timeout_vtime);
        if (res.status == RecvStatus::kTimeout) {
          std::lock_guard<std::mutex> lock(wal.mu);
          wal.live[static_cast<std::size_t>(r)] = 0;
          failed = true;
          break;
        }
        if (res.status == RecvStatus::kCorrupt) {
          failed = true;  // frame lost in transit; the worker itself is fine
          break;
        }
        const auto fphase = res.msg.unpack<std::uint32_t>();
        const auto fround = res.msg.unpack<std::uint32_t>();
        const auto count = res.msg.unpack<std::uint32_t>();
        if (fphase != phase || fround != round) continue;  // stale frame
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto p = res.msg.unpack<std::uint32_t>();
          FOCUS_CHECK(p < nparts, "record frame names an invalid partition");
          by_part[p] = unpack_one(res.msg);
        }
        FOCUS_CHECK(res.msg.fully_consumed(),
                    "trailing bytes in record frame");
        break;
      }
    }
    if (failed) {
      comm.note_retry();
      comm.charge_recovery(fault.recv_timeout_vtime *
                           static_cast<double>(round + 1));
      continue;
    }
    return detail::ft_emit(by_part, size, order);
  }
}

/// Shared drive loop of the symmetric protocol. Every rank serves scan
/// commands from whichever rank it currently believes coordinates; on proof
/// of that rank's death it rotates to the lowest rank it has not proven dead
/// (death is only ever proven by a receive from a terminated rank throwing).
/// Rank order is the succession order, so at most one live rank can believe
/// itself coordinator: a rank self-appoints only after proving every lower
/// rank terminated, and every higher live rank then blocks on the true
/// coordinator or on a terminated rank it is about to prove dead — never on
/// a live non-coordinator.
inline void ft_sym_drive(
    Comm& comm, SymWal& wal, const FaultConfig& fault,
    const std::function<void(std::uint32_t, std::uint32_t, Message&,
                             double*)>& scan_and_pack,
    const std::function<void(std::uint32_t)>& coordinate,
    const FtUnpackState& unpack_state = nullptr) {
  const int size = comm.size();
  const int self = comm.rank();
  int coord = 0;
  std::vector<std::uint8_t> proven_dead(static_cast<std::size_t>(size), 0);
  std::uint64_t last_seq = 0;
  while (coord != self) {
    Message cmd;
    try {
      cmd = comm.recv(coord, kFtTagSymCmd);
    } catch (const CorruptMessage& e) {
      // A command this rank cannot decode means it cannot follow the
      // protocol any more: fail the rank and let the coordinator reassign.
      throw RankFailed(e.what());
    } catch (const RankCrashed&) {
      throw;  // this rank's own injected crash, not a peer's death
    } catch (const RankFailed&) {
      proven_dead[static_cast<std::size_t>(coord)] = 1;
      int next = self;
      for (int r = 0; r < size; ++r) {
        if (r == self || !proven_dead[static_cast<std::size_t>(r)]) {
          next = r;
          break;
        }
      }
      coord = next;
      continue;
    }
    const auto kind = cmd.unpack<std::uint32_t>();
    if (kind == kFtCmdDone) {
      FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in done command");
      return;
    }
    FOCUS_CHECK(kind == kFtCmdScan, "unknown command kind");
    const auto seq = cmd.unpack<std::uint64_t>();
    const auto phase = cmd.unpack<std::uint32_t>();
    const auto round = cmd.unpack<std::uint32_t>();
    const auto parts = cmd.unpack_vector<std::uint32_t>();
    if (unpack_state) {
      for (const std::uint32_t p : parts) unpack_state(phase, p, cmd);
    }
    FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in scan command");
    if (seq <= last_seq) continue;  // duplicated command; already executed
    last_seq = seq;

    Message frame;
    frame.pack(phase);
    frame.pack(round);
    frame.pack(static_cast<std::uint32_t>(parts.size()));
    double work = 0.0;
    for (const std::uint32_t p : parts) {
      frame.pack(p);
      scan_and_pack(phase, p, frame, &work);
    }
    comm.charge(work);
    comm.send(coord, kFtTagSymRec, std::move(frame));
  }

  // Coordinator (rank 0 initially, or a successor after rotation): join the
  // log's live set — a successor may have been declared dead by a timeout it
  // survived — absorb this rank's own death proofs, and resume after the
  // last committed phase.
  std::uint32_t phase_start = 0;
  std::size_t wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(wal.mu);
    for (int r = 0; r < size; ++r) {
      if (proven_dead[static_cast<std::size_t>(r)]) {
        wal.live[static_cast<std::size_t>(r)] = 0;
      }
    }
    wal.live[static_cast<std::size_t>(self)] = 1;
    phase_start = static_cast<std::uint32_t>(wal.entries.size());
    for (const auto& e : wal.entries) wal_bytes += e.payload.size_bytes();
  }
  if (self != 0) {
    // A successor fetches the committed log from replicated storage and
    // fast-forwards through it before commanding anything.
    comm.charge_recovery(fault.recv_timeout_vtime +
                         comm.cost().message_cost(wal_bytes));
  }
  coordinate(phase_start);

  // Release every rank still in the log's live set (sends to ranks that
  // already terminated are harmless).
  std::vector<std::uint8_t> live;
  {
    std::lock_guard<std::mutex> lock(wal.mu);
    live = wal.live;
  }
  for (int r = 0; r < size; ++r) {
    if (r == self || !live[static_cast<std::size_t>(r)]) continue;
    Message done;
    done.pack(kFtCmdDone);
    comm.send(r, kFtTagSymCmd, std::move(done));
  }
}

}  // namespace focus::mpr
