// Fault model for the mpr runtime (DESIGN.md §7).
//
// A FaultPlan is a *pure function* of (seed, rank, op-sequence-number): every
// communication op a rank performs (send, recv, barrier — collectives
// decompose into these) advances a per-rank op counter, and the plan is
// consulted at each op. Because the op sequence of a rank is itself
// deterministic (see the determinism contract in runtime.hpp), the injected
// fault schedule — and therefore the recovery work, the virtual-time cost and
// the final RunStats — is bit-for-bit reproducible from the seed alone.
//
// Failure taxonomy injected here and detected by the runtime:
//   * rank crash        -> RankFailed thrown at the chosen op
//   * message drop      -> payload never enqueued; receiver times out
//   * message duplicate -> payload enqueued twice; protocol frames carry
//                          (phase, round) headers so stale copies are discarded
//   * payload corruption-> a byte is flipped after the CRC32 frame checksum is
//                          taken; the receiver surfaces CorruptMessage
//   * message delay     -> the arrival floor moves later in virtual time
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace focus {
struct EnvSnapshot;
}

namespace focus::mpr {

/// A rank died — either the fault plan crashed it at this op, or it cannot
/// make progress because a peer it depends on terminated. Runtime::run counts
/// these in RunStats::ranks_failed (instead of rethrowing) while a fault plan
/// is active; with no plan they are real errors.
class RankFailed : public Error {
 public:
  explicit RankFailed(const std::string& what) : Error(what) {}
};

/// The calling rank itself was crashed by the fault plan (thrown from
/// Comm::fault_point). A subclass so Runtime::run's accounting still sees a
/// RankFailed, but drivers that catch RankFailed to detect a *peer's* death
/// (the symmetric coordinator rotation) can let their own crash propagate.
class RankCrashed : public RankFailed {
 public:
  explicit RankCrashed(const std::string& what) : RankFailed(what) {}
};

/// A received frame failed its CRC32 checksum. Thrown by Comm::recv; reported
/// as RecvStatus::kCorrupt by Comm::try_recv so drivers can retry.
class CorruptMessage : public Error {
 public:
  explicit CorruptMessage(const std::string& what) : Error(what) {}
};

/// CRC32 (IEEE, reflected) over a byte range — the frame checksum.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// What the plan decided for one (rank, op). At most one of the message
/// faults applies per send; a crash pre-empts everything.
struct FaultDecision {
  bool crash = false;
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  double delay = 0.0;  // extra virtual seconds added to the arrival floor
};

/// Deterministic crash point: rank `rank` throws RankFailed at its `op`-th
/// communication op (1-based). Used by the crash-at-every-op sweep.
struct CrashPoint {
  Rank rank = -1;
  std::uint64_t op = 0;
};

struct FaultPlan {
  /// Seed for the per-(rank, op) hash stream. Two runs with the same seed,
  /// rates and program execute the identical fault schedule.
  std::uint64_t seed = 0;

  /// Per-op fault probabilities (evaluated independently, in this order;
  /// the first that fires wins for that op).
  double p_crash = 0.0;
  double p_drop = 0.0;
  double p_duplicate = 0.0;
  double p_corrupt = 0.0;
  double p_delay = 0.0;
  /// Virtual-time delay applied when a delay fault fires.
  double delay_vtime = 1e-4;

  /// Explicit crash points, checked before the probabilistic stream.
  std::vector<CrashPoint> crashes;

  /// An empty plan injects nothing; the runtime and drivers take the exact
  /// pre-fault-tolerance code path (byte-identical stats and output).
  bool empty() const {
    return crashes.empty() && p_crash == 0.0 && p_drop == 0.0 &&
           p_duplicate == 0.0 && p_corrupt == 0.0 && p_delay == 0.0;
  }

  /// Pure decision function for rank `rank`'s op number `op` (1-based).
  FaultDecision decide(Rank rank, std::uint64_t op) const;

  /// Plan from FOCUS_FAULT_SEED / FOCUS_FAULT_{CRASH,DROP,DUP,CORRUPT,DELAY}
  /// environment variables; empty when FOCUS_FAULT_SEED is unset.
  static FaultPlan from_env();
  /// Same, resolved against an already-captured snapshot (FocusConfig takes
  /// one snapshot and derives every env default from it).
  static FaultPlan from_env(const EnvSnapshot& env);
};

/// Recovery knobs for the fault-tolerant distributed drivers.
struct FaultConfig {
  /// Bound on phase replays: after this many failed rounds of one phase the
  /// master gives up and throws.
  int max_retries = 8;
  /// Virtual-time deadline charged per timed-out receive; also the base unit
  /// of the linear retry backoff charged to the master's clock.
  double recv_timeout_vtime = 1e-3;

  /// Config from FOCUS_FAULT_MAX_RETRIES / FOCUS_FAULT_RECV_TIMEOUT; unset
  /// variables keep the defaults, malformed ones throw with the offending
  /// value.
  static FaultConfig from_env();
  /// Same, resolved against an already-captured snapshot.
  static FaultConfig from_env(const EnvSnapshot& env);
};

}  // namespace focus::mpr
