// Message: a byte buffer with pack/unpack cursors, the unit of communication
// in the mpr runtime. Supports trivially-copyable scalars, strings, and
// vectors thereof. Unpacking past the end throws — a truncated message is a
// protocol bug, not a recoverable condition.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace focus::mpr {

class Message {
 public:
  Message() = default;

  std::size_t size_bytes() const { return bytes_.size(); }
  bool fully_consumed() const { return cursor_ == bytes_.size(); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void pack_string(const std::string& s) {
    pack(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    bytes_.insert(bytes_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack_vector(const std::vector<T>& v) {
    pack(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T unpack() {
    T value;
    take(&value, sizeof(T));
    return value;
  }

  std::string unpack_string() {
    const auto n = unpack<std::uint64_t>();
    std::string s(static_cast<std::size_t>(n), '\0');
    take(s.data(), s.size());
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> unpack_vector() {
    const auto n = unpack<std::uint64_t>();
    std::vector<T> v(static_cast<std::size_t>(n));
    take(v.data(), v.size() * sizeof(T));
    return v;
  }

 private:
  void take(void* dst, std::size_t n) {
    FOCUS_CHECK(cursor_ + n <= bytes_.size(),
                "message unpack past end of buffer");
    std::memcpy(dst, bytes_.data() + cursor_, n);
    cursor_ += n;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace focus::mpr
