// Message: a byte buffer with pack/unpack cursors, the unit of communication
// in the mpr runtime. Supports trivially-copyable scalars, strings, and
// vectors thereof. Unpacking past the end throws — a truncated message is a
// protocol bug, not a recoverable condition. Declared lengths are validated
// against the remaining buffer *before* any allocation, so a corrupted
// 8-byte length prefix cannot trigger a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace focus::mpr {

class Runtime;

class Message {
 public:
  Message() = default;

  std::size_t size_bytes() const { return bytes_.size(); }
  bool fully_consumed() const { return cursor_ == bytes_.size(); }

  /// CRC32 over the payload — the frame checksum the runtime verifies on
  /// receive (defined in fault.cpp).
  std::uint32_t checksum() const;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack(const T& value) {
    append(&value, sizeof(T));
  }

  void pack_string(const std::string& s) {
    pack(static_cast<std::uint64_t>(s.size()));
    append(s.data(), s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void pack_vector(const std::vector<T>& v) {
    pack(static_cast<std::uint64_t>(v.size()));
    append(v.data(), v.size() * sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T unpack() {
    T value;
    take(&value, sizeof(T));
    return value;
  }

  std::string unpack_string() {
    const auto n = unpack<std::uint64_t>();
    FOCUS_CHECK(n <= remaining(), "string length exceeds message remainder");
    std::string s(static_cast<std::size_t>(n), '\0');
    take(s.data(), s.size());
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> unpack_vector() {
    const auto n = unpack<std::uint64_t>();
    FOCUS_CHECK(n <= remaining() / sizeof(T),
                "vector length exceeds message remainder");
    std::vector<T> v(static_cast<std::size_t>(n));
    take(v.data(), v.size() * sizeof(T));
    return v;
  }

 private:
  friend class Runtime;  // fault injection flips payload bytes

  std::size_t remaining() const { return bytes_.size() - cursor_; }

  void append(const void* src, std::size_t n) {
    if (n == 0) return;
    const std::size_t off = bytes_.size();
    bytes_.resize(off + n);
    std::memcpy(bytes_.data() + off, src, n);
  }

  void take(void* dst, std::size_t n) {
    FOCUS_CHECK(n <= remaining(), "message unpack past end of buffer");
    std::memcpy(dst, bytes_.data() + cursor_, n);
    cursor_ += n;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace focus::mpr
