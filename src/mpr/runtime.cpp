#include "mpr/runtime.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace focus::mpr {

namespace {

// Collective op codes folded into internal (negative) tags.
enum CollectiveOp : int {
  kOpBroadcast = 0,
  kOpGather = 1,
  kOpReduceSum = 2,
  kOpReduceMax = 3,
  kOpReduceFMax = 4,
  kOpCount = 5,
};

}  // namespace

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

int Comm::size() const { return rt_->size(); }

const CostModel& Comm::cost() const { return rt_->cost(); }

void Comm::charge(double work_units) {
  FOCUS_ASSERT(work_units >= 0.0, "negative work charge");
  clock_ += rt_->cost().compute_cost(work_units);
}

void Comm::advance_vtime(double seconds) {
  FOCUS_ASSERT(seconds >= 0.0, "negative time advance");
  clock_ += seconds;
}

FaultDecision Comm::fault_point(const char* op_name) {
  if (!rt_->plan_active_) return {};
  ++op_seq_;
  FaultDecision d = rt_->plan().decide(rank_, op_seq_);
  if (d.crash) {
    throw RankCrashed("rank " + std::to_string(rank_) +
                      " crashed by fault plan at op " +
                      std::to_string(op_seq_) + " (" + op_name + ")");
  }
  return d;
}

void Comm::send(Rank dst, int tag, Message msg) {
  FOCUS_CHECK(dst >= 0 && dst < size(), "send to invalid rank");
  FOCUS_CHECK(dst != rank_, "send to self is not supported");
  const FaultDecision d = fault_point("send");
  const std::size_t bytes = msg.size_bytes();
  // Eager-protocol CPU overhead on the sender.
  clock_ += rt_->cost().alpha;
  Runtime::Envelope env{std::move(msg),
                        clock_ + rt_->cost().message_cost(bytes) + d.delay,
                        0};
  env.crc = env.payload.checksum();
  if (d.corrupt) rt_->corrupt_payload(env.payload, rank_, op_seq_);
  if (d.drop) return;  // sender pays the overhead; nothing is delivered
  if (d.duplicate) {
    Runtime::Envelope copy{env.payload, env.arrival_floor, env.crc};
    rt_->deliver(dst, rank_, tag, std::move(copy));
  }
  rt_->deliver(dst, rank_, tag, std::move(env));
}

Message Comm::recv(Rank src, int tag) {
  FOCUS_CHECK(src >= 0 && src < size(), "recv from invalid rank");
  FOCUS_CHECK(src != rank_, "recv from self is not supported");
  fault_point("recv");
  Runtime::Envelope env;
  rt_->take(rank_, src, tag, /*timed=*/false, &env);
  clock_ = std::max(clock_, env.arrival_floor);
  if (env.payload.checksum() != env.crc) {
    throw CorruptMessage("rank " + std::to_string(rank_) +
                         " received corrupt frame from rank " +
                         std::to_string(src) + " (tag " + std::to_string(tag) +
                         ")");
  }
  return std::move(env.payload);
}

RecvResult Comm::try_recv(Rank src, int tag, double timeout_vtime) {
  FOCUS_CHECK(src >= 0 && src < size(), "recv from invalid rank");
  FOCUS_CHECK(src != rank_, "recv from self is not supported");
  FOCUS_CHECK(timeout_vtime >= 0.0, "negative recv timeout");
  fault_point("recv");
  Runtime::Envelope env;
  if (rt_->take(rank_, src, tag, /*timed=*/true, &env) ==
      Runtime::TakeStatus::kTimeout) {
    clock_ += timeout_vtime;
    rt_->note_recovery(0, timeout_vtime);
    return {RecvStatus::kTimeout, Message{}};
  }
  clock_ = std::max(clock_, env.arrival_floor);
  if (env.payload.checksum() != env.crc) {
    return {RecvStatus::kCorrupt, std::move(env.payload)};
  }
  return {RecvStatus::kOk, std::move(env.payload)};
}

void Comm::note_retry() { rt_->note_recovery(1, 0.0); }

void Comm::charge_recovery(double seconds) {
  FOCUS_ASSERT(seconds >= 0.0, "negative recovery charge");
  clock_ += seconds;
  rt_->note_recovery(0, seconds);
}

void Comm::barrier() {
  fault_point("barrier");
  rt_->barrier_wait(*this);
}

int Comm::next_collective_tag(int op) {
  // Collectives are SPMD-ordered, so a per-rank sequence number matches
  // across ranks. Negative tags keep the internal space disjoint from user
  // tags (which must be >= 0).
  const int seq = static_cast<int>(collective_seq_++ % 0x0ffffff);
  return -(seq * kOpCount + op + 1);
}

Message Comm::broadcast(Message msg, Rank root) {
  const int p = size();
  const int tag = next_collective_tag(kOpBroadcast);
  if (p == 1) return msg;
  // Binomial tree rooted at `root`, in the rotated space
  // vrank = (rank - root) mod p. A node's parent clears its lowest set bit;
  // its children are vrank | m for masks m below that bit.
  const int vrank = (rank_ - root + p) % p;
  int level = 1;
  if (vrank == 0) {
    while (level < p) level <<= 1;
  } else {
    while ((vrank & level) == 0) level <<= 1;
  }
  if (vrank != 0) {
    msg = recv(((vrank & ~level) + root) % p, tag);
  }
  for (int mask = level >> 1; mask >= 1; mask >>= 1) {
    const int vdst = vrank | mask;
    if (vdst < p) {
      Message copy = msg;  // payload duplicated per subtree
      send((vdst + root) % p, tag, std::move(copy));
    }
  }
  return msg;
}

std::vector<Message> Comm::gather(Message local, Rank root) {
  const int p = size();
  const int tag = next_collective_tag(kOpGather);
  if (p == 1) {
    std::vector<Message> out;
    out.push_back(std::move(local));
    return out;
  }
  // Flat gather: leaves send directly to root. The tree latency that a
  // smarter gather would obtain is captured by arrival floors anyway (root
  // pays alpha+beta*b per child, serialized), which matches the master/worker
  // pattern of the paper's algorithms.
  if (rank_ != root) {
    send(root, tag, std::move(local));
    return {};
  }
  std::vector<Message> out(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    if (r == root) {
      out[static_cast<std::size_t>(r)] = std::move(local);
    } else {
      out[static_cast<std::size_t>(r)] = recv(r, tag);
    }
  }
  return out;
}

namespace {

template <typename T, typename Fold>
T tree_reduce_broadcast(Comm& comm, int tag, T v, Fold fold) {
  // Reduce up a binomial tree rooted at rank 0, then broadcast the result
  // down the same tree. The same tag serves both phases: each parent/child
  // pair exchanges exactly one message per direction, and mailbox queues are
  // keyed by (source, tag), so the phases cannot interfere.
  const int p = comm.size();
  const Rank r = comm.rank();

  // Lowest set bit of r = the level at which r hands off to its parent.
  // Rank 0 never hands off; its level is the smallest power of two >= p.
  int level = 1;
  if (r == 0) {
    while (level < p) level <<= 1;
  } else {
    while ((r & level) == 0) level <<= 1;
  }

  // Reduce phase: absorb each child (r | mask for mask < level), then hand
  // the folded value to the parent.
  for (int mask = 1; mask < level; mask <<= 1) {
    const int child = r | mask;
    if (child < p) {
      Message m = comm.recv(child, tag);
      v = fold(v, m.unpack<T>());
    }
  }
  if (r != 0) {
    Message m;
    m.pack(v);
    comm.send(r & ~level, tag, std::move(m));
    Message back = comm.recv(r & ~level, tag);
    v = back.unpack<T>();
  }

  // Broadcast phase: forward the final value to every child.
  for (int mask = level >> 1; mask >= 1; mask >>= 1) {
    const int child = r | mask;
    if (child < p) {
      Message fm;
      fm.pack(v);
      comm.send(child, tag, std::move(fm));
    }
  }
  return v;
}

}  // namespace

std::int64_t Comm::allreduce_sum(std::int64_t v) {
  const int tag = next_collective_tag(kOpReduceSum);
  if (size() == 1) return v;
  return tree_reduce_broadcast(*this, tag, v,
                               [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t v) {
  const int tag = next_collective_tag(kOpReduceMax);
  if (size() == 1) return v;
  return tree_reduce_broadcast(
      *this, tag, v, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

double Comm::allreduce_fmax(double v) {
  const int tag = next_collective_tag(kOpReduceFMax);
  if (size() == 1) return v;
  return tree_reduce_broadcast(
      *this, tag, v, [](double a, double b) { return std::max(a, b); });
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(int nranks, CostModel cost, FaultPlan plan)
    : nranks_(nranks),
      cost_(cost),
      plan_(std::move(plan)),
      plan_active_(!plan_.empty()) {
  FOCUS_CHECK(nranks >= 1, "runtime requires at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  rank_state_.assign(static_cast<std::size_t>(nranks), RankState::kRunning);
  awaited_.assign(static_cast<std::size_t>(nranks), {0, 0});
  timed_wait_.assign(static_cast<std::size_t>(nranks), 0);
  timeout_fired_.assign(static_cast<std::size_t>(nranks), 0);
}

void Runtime::deliver(Rank dst, Rank src, int tag, Envelope env) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stat_messages_;
  stat_bytes_ += env.payload.size_bytes();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  box.queues[{src, tag}].push_back(std::move(env));
  box.cv.notify_all();
}

void Runtime::corrupt_payload(Message& msg, Rank rank, std::uint64_t op) const {
  if (msg.bytes_.empty()) return;
  std::uint64_t state = plan_.seed ^ 0x7f4a7c15u;
  state = splitmix64(state) ^ (static_cast<std::uint64_t>(rank) + 1);
  state = splitmix64(state) ^ op;
  const std::size_t index =
      static_cast<std::size_t>(splitmix64(state) % msg.bytes_.size());
  msg.bytes_[index] ^= 0x5a;
}

void Runtime::note_recovery(std::uint64_t retries, double vtime) {
  std::lock_guard<std::mutex> lock(mu_);
  stat_retries_ += retries;
  stat_recovery_vtime_ += vtime;
}

void Runtime::detect_deadlock_locked() {
  for (Rank r = 0; r < nranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    switch (rank_state_[i]) {
      case RankState::kRunning:
        return;  // someone can still move
      case RankState::kBlockedRecv: {
        if (timeout_fired_[i]) return;  // about to resume
        const Mailbox& box = *mailboxes_[i];
        const auto it = box.queues.find(awaited_[i]);
        if (it != box.queues.end() && !it->second.empty()) return;
        if (terminated_locked(awaited_[i].first)) return;  // wakes to throw
        break;  // genuinely starved
      }
      case RankState::kBlockedBarrier:
      case RankState::kDone:
      case RankState::kFailed:
        break;
    }
  }
  // Terminal configuration: no rank can make progress. Fire every starved
  // timed receive as one batch — the terminal configuration of a
  // deterministic program is unique, so this batch is deterministic too.
  for (Rank r = 0; r < nranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (rank_state_[i] == RankState::kBlockedRecv && timed_wait_[i]) {
      timeout_fired_[i] = 1;
      mailboxes_[i]->cv.notify_all();
    }
  }
}

Runtime::TakeStatus Runtime::take(Rank self, Rank src, int tag, bool timed,
                                  Envelope* out) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(self);
  Mailbox& box = *mailboxes_[i];
  const auto key = std::make_pair(src, tag);
  for (;;) {
    auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) {
      *out = std::move(it->second.front());
      it->second.pop_front();
      return TakeStatus::kGot;
    }
    if (terminated_locked(src)) {
      if (timed) return TakeStatus::kTimeout;
      throw RankFailed("rank " + std::to_string(self) +
                       " waits on terminated rank " + std::to_string(src) +
                       " (tag " + std::to_string(tag) + ")");
    }
    rank_state_[i] = RankState::kBlockedRecv;
    awaited_[i] = key;
    timed_wait_[i] = timed ? 1 : 0;
    timeout_fired_[i] = 0;
    detect_deadlock_locked();
    box.cv.wait(lock, [&] {
      if (timeout_fired_[i]) return true;
      const auto it2 = box.queues.find(key);
      if (it2 != box.queues.end() && !it2->second.empty()) return true;
      return terminated_locked(src);
    });
    rank_state_[i] = RankState::kRunning;
    timed_wait_[i] = 0;
    if (timeout_fired_[i]) {
      timeout_fired_[i] = 0;
      return TakeStatus::kTimeout;
    }
  }
}

void Runtime::release_barrier_locked() {
  barrier_release_clock_ = barrier_max_clock_ + cost_.tree_latency(nranks_);
  barrier_count_ = 0;
  barrier_max_clock_ = 0.0;
  ++barrier_generation_;
  for (Rank r = 0; r < nranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    // Mark waiters runnable here so a concurrent deadlock check never sees a
    // released-but-not-yet-awake rank as blocked.
    if (rank_state_[i] == RankState::kBlockedBarrier) {
      rank_state_[i] = RankState::kRunning;
    }
  }
  barrier_cv_.notify_all();
}

void Runtime::barrier_wait(Comm& comm) {
  if (nranks_ == 1) return;
  std::unique_lock<std::mutex> lock(mu_);
  barrier_max_clock_ = std::max(barrier_max_clock_, comm.clock_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ >= active_count_) {
    release_barrier_locked();
  } else {
    rank_state_[static_cast<std::size_t>(comm.rank_)] =
        RankState::kBlockedBarrier;
    detect_deadlock_locked();
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != my_generation; });
  }
  comm.clock_ = barrier_release_clock_;
}

void Runtime::finish_rank(Rank rank, bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  rank_state_[static_cast<std::size_t>(rank)] =
      failed ? RankState::kFailed : RankState::kDone;
  --active_count_;
  // A barrier some ranks already entered may now be complete without the
  // terminated rank.
  if (active_count_ > 0 && barrier_count_ >= active_count_) {
    release_barrier_locked();
  }
  // Wake peers blocked on this rank so they observe the termination.
  for (auto& box : mailboxes_) box->cv.notify_all();
  detect_deadlock_locked();
}

RunStats Runtime::run(const std::function<void(Comm&)>& fn) {
  Timer wall;
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(nranks_));
  for (Rank r = 0; r < nranks_; ++r) comms.push_back(Comm(this, r));

  {
    std::lock_guard<std::mutex> lock(mu_);
    stat_messages_ = 0;
    stat_bytes_ = 0;
    stat_retries_ = 0;
    stat_recovery_vtime_ = 0.0;
    rank_state_.assign(static_cast<std::size_t>(nranks_), RankState::kRunning);
    std::fill(timed_wait_.begin(), timed_wait_.end(), 0);
    std::fill(timeout_fired_.begin(), timeout_fired_.end(), 0);
    active_count_ = nranks_;
    barrier_count_ = 0;
    barrier_max_clock_ = 0.0;
    for (auto& box : mailboxes_) box->queues.clear();
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  if (nranks_ == 1) {
    try {
      fn(comms[0]);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    finish_rank(0, errors[0] != nullptr);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (Rank r = 0; r < nranks_; ++r) {
      threads.emplace_back([&, r] {
        try {
          fn(comms[static_cast<std::size_t>(r)]);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
        finish_rank(r, errors[static_cast<std::size_t>(r)] != nullptr);
      });
    }
    for (auto& t : threads) t.join();
  }

  // Error aggregation: with an active fault plan, RankFailed is the expected
  // injected outcome and is only counted; everything else is a real error.
  int ranks_failed = 0;
  std::vector<std::pair<Rank, std::exception_ptr>> real_errors;
  for (Rank r = 0; r < nranks_; ++r) {
    const auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    bool injected = false;
    if (plan_active_) {
      try {
        std::rethrow_exception(e);
      } catch (const RankFailed&) {
        injected = true;
      } catch (...) {
      }
    }
    if (injected) {
      ++ranks_failed;
    } else {
      real_errors.emplace_back(r, e);
    }
  }
  if (real_errors.size() == 1) {
    std::rethrow_exception(real_errors.front().second);
  }
  if (real_errors.size() > 1) {
    std::string what = std::to_string(real_errors.size()) +
                       " ranks failed; primary is lowest rank";
    for (const auto& [r, e] : real_errors) {
      what += "; rank " + std::to_string(r) + ": ";
      try {
        std::rethrow_exception(e);
      } catch (const std::exception& ex) {
        what += ex.what();
      } catch (...) {
        what += "unknown exception";
      }
    }
    throw Error(what);
  }

  RunStats stats;
  stats.ranks_failed = ranks_failed;
  stats.rank_vtime.reserve(static_cast<std::size_t>(nranks_));
  for (const Comm& c : comms) {
    stats.rank_vtime.push_back(c.vtime());
    stats.makespan = std::max(stats.makespan, c.vtime());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.messages = stat_messages_;
    stats.bytes = stat_bytes_;
    stats.retries = stat_retries_;
    stats.recovery_vtime = stat_recovery_vtime_;
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

RunStats Runtime::execute(int nranks, const std::function<void(Comm&)>& fn,
                          CostModel cost, FaultPlan plan) {
  Runtime rt(nranks, cost, std::move(plan));
  return rt.run(fn);
}

}  // namespace focus::mpr
