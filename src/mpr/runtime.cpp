#include "mpr/runtime.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace focus::mpr {

namespace {

// Collective op codes folded into internal (negative) tags.
enum CollectiveOp : int {
  kOpBroadcast = 0,
  kOpGather = 1,
  kOpReduceSum = 2,
  kOpReduceMax = 3,
  kOpReduceFMax = 4,
  kOpCount = 5,
};

}  // namespace

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

int Comm::size() const { return rt_->size(); }

const CostModel& Comm::cost() const { return rt_->cost(); }

void Comm::charge(double work_units) {
  FOCUS_ASSERT(work_units >= 0.0, "negative work charge");
  clock_ += rt_->cost().compute_cost(work_units);
}

void Comm::advance_vtime(double seconds) {
  FOCUS_ASSERT(seconds >= 0.0, "negative time advance");
  clock_ += seconds;
}

void Comm::send(Rank dst, int tag, Message msg) {
  FOCUS_CHECK(dst >= 0 && dst < size(), "send to invalid rank");
  FOCUS_CHECK(dst != rank_, "send to self is not supported");
  const std::size_t bytes = msg.size_bytes();
  // Eager-protocol CPU overhead on the sender.
  clock_ += rt_->cost().alpha;
  Runtime::Envelope env{std::move(msg),
                        clock_ + rt_->cost().message_cost(bytes)};
  rt_->deliver(dst, rank_, tag, std::move(env));
}

Message Comm::recv(Rank src, int tag) {
  FOCUS_CHECK(src >= 0 && src < size(), "recv from invalid rank");
  FOCUS_CHECK(src != rank_, "recv from self is not supported");
  Runtime::Envelope env = rt_->take(rank_, src, tag);
  clock_ = std::max(clock_, env.arrival_floor);
  return std::move(env.payload);
}

void Comm::barrier() { rt_->barrier_wait(*this); }

int Comm::next_collective_tag(int op) {
  // Collectives are SPMD-ordered, so a per-rank sequence number matches
  // across ranks. Negative tags keep the internal space disjoint from user
  // tags (which must be >= 0).
  const int seq = static_cast<int>(collective_seq_++ % 0x0ffffff);
  return -(seq * kOpCount + op + 1);
}

Message Comm::broadcast(Message msg, Rank root) {
  const int p = size();
  const int tag = next_collective_tag(kOpBroadcast);
  if (p == 1) return msg;
  // Binomial tree rooted at `root`, in the rotated space
  // vrank = (rank - root) mod p. A node's parent clears its lowest set bit;
  // its children are vrank | m for masks m below that bit.
  const int vrank = (rank_ - root + p) % p;
  int level = 1;
  if (vrank == 0) {
    while (level < p) level <<= 1;
  } else {
    while ((vrank & level) == 0) level <<= 1;
  }
  if (vrank != 0) {
    msg = recv(((vrank & ~level) + root) % p, tag);
  }
  for (int mask = level >> 1; mask >= 1; mask >>= 1) {
    const int vdst = vrank | mask;
    if (vdst < p) {
      Message copy = msg;  // payload duplicated per subtree
      send((vdst + root) % p, tag, std::move(copy));
    }
  }
  return msg;
}

std::vector<Message> Comm::gather(Message local, Rank root) {
  const int p = size();
  const int tag = next_collective_tag(kOpGather);
  if (p == 1) {
    std::vector<Message> out;
    out.push_back(std::move(local));
    return out;
  }
  // Flat gather: leaves send directly to root. The tree latency that a
  // smarter gather would obtain is captured by arrival floors anyway (root
  // pays alpha+beta*b per child, serialized), which matches the master/worker
  // pattern of the paper's algorithms.
  if (rank_ != root) {
    send(root, tag, std::move(local));
    return {};
  }
  std::vector<Message> out(static_cast<std::size_t>(p));
  for (Rank r = 0; r < p; ++r) {
    if (r == root) {
      out[static_cast<std::size_t>(r)] = std::move(local);
    } else {
      out[static_cast<std::size_t>(r)] = recv(r, tag);
    }
  }
  return out;
}

namespace {

template <typename T, typename Fold>
T tree_reduce_broadcast(Comm& comm, int tag, T v, Fold fold) {
  // Reduce up a binomial tree rooted at rank 0, then broadcast the result
  // down the same tree. The same tag serves both phases: each parent/child
  // pair exchanges exactly one message per direction, and mailbox queues are
  // keyed by (source, tag), so the phases cannot interfere.
  const int p = comm.size();
  const Rank r = comm.rank();

  // Lowest set bit of r = the level at which r hands off to its parent.
  // Rank 0 never hands off; its level is the smallest power of two >= p.
  int level = 1;
  if (r == 0) {
    while (level < p) level <<= 1;
  } else {
    while ((r & level) == 0) level <<= 1;
  }

  // Reduce phase: absorb each child (r | mask for mask < level), then hand
  // the folded value to the parent.
  for (int mask = 1; mask < level; mask <<= 1) {
    const int child = r | mask;
    if (child < p) {
      Message m = comm.recv(child, tag);
      v = fold(v, m.unpack<T>());
    }
  }
  if (r != 0) {
    Message m;
    m.pack(v);
    comm.send(r & ~level, tag, std::move(m));
    Message back = comm.recv(r & ~level, tag);
    v = back.unpack<T>();
  }

  // Broadcast phase: forward the final value to every child.
  for (int mask = level >> 1; mask >= 1; mask >>= 1) {
    const int child = r | mask;
    if (child < p) {
      Message fm;
      fm.pack(v);
      comm.send(child, tag, std::move(fm));
    }
  }
  return v;
}

}  // namespace

std::int64_t Comm::allreduce_sum(std::int64_t v) {
  const int tag = next_collective_tag(kOpReduceSum);
  if (size() == 1) return v;
  return tree_reduce_broadcast(*this, tag, v,
                               [](std::int64_t a, std::int64_t b) { return a + b; });
}

std::int64_t Comm::allreduce_max(std::int64_t v) {
  const int tag = next_collective_tag(kOpReduceMax);
  if (size() == 1) return v;
  return tree_reduce_broadcast(
      *this, tag, v, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
}

double Comm::allreduce_fmax(double v) {
  const int tag = next_collective_tag(kOpReduceFMax);
  if (size() == 1) return v;
  return tree_reduce_broadcast(
      *this, tag, v, [](double a, double b) { return std::max(a, b); });
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(int nranks, CostModel cost) : nranks_(nranks), cost_(cost) {
  FOCUS_CHECK(nranks >= 1, "runtime requires at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Runtime::deliver(Rank dst, Rank src, int tag, Envelope env) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stat_messages_;
    stat_bytes_ += env.payload.size_bytes();
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[{src, tag}].push_back(std::move(env));
  }
  box.cv.notify_all();
}

Runtime::Envelope Runtime::take(Rank self, Rank src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& queue = box.queues[key];
  Envelope env = std::move(queue.front());
  queue.pop_front();
  return env;
}

void Runtime::barrier_wait(Comm& comm) {
  if (nranks_ == 1) return;
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_max_clock_ = std::max(barrier_max_clock_, comm.clock_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_release_clock_ =
        barrier_max_clock_ + cost_.tree_latency(nranks_);
    barrier_count_ = 0;
    barrier_max_clock_ = 0.0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != my_generation; });
  }
  comm.clock_ = barrier_release_clock_;
}

RunStats Runtime::run(const std::function<void(Comm&)>& fn) {
  Timer wall;
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(nranks_));
  for (Rank r = 0; r < nranks_; ++r) comms.push_back(Comm(this, r));

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stat_messages_ = 0;
    stat_bytes_ = 0;
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks_));
  if (nranks_ == 1) {
    fn(comms[0]);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks_));
    for (Rank r = 0; r < nranks_; ++r) {
      threads.emplace_back([&, r] {
        try {
          fn(comms[static_cast<std::size_t>(r)]);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  RunStats stats;
  stats.rank_vtime.reserve(static_cast<std::size_t>(nranks_));
  for (const Comm& c : comms) {
    stats.rank_vtime.push_back(c.vtime());
    stats.makespan = std::max(stats.makespan, c.vtime());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.messages = stat_messages_;
    stats.bytes = stat_bytes_;
  }
  stats.wall_seconds = wall.seconds();
  return stats;
}

RunStats Runtime::execute(int nranks, const std::function<void(Comm&)>& fn,
                          CostModel cost) {
  Runtime rt(nranks, cost);
  return rt.run(fn);
}

}  // namespace focus::mpr
