// Read and ReadSet: the unit of NGS input data.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace focus::io {

/// One sequencing read. `qual` is Phred+33 and empty for FASTA input.
/// `origin`/`reverse` trace reads produced by preprocessing (trimming and
/// reverse-complement augmentation, paper §II-A) back to their source read.
struct Read {
  std::string name;
  std::string seq;
  std::string qual;
  ReadId origin = kInvalidRead;
  bool reverse = false;

  std::size_t length() const { return seq.size(); }
};

/// A dense, indexable collection of reads.
class ReadSet {
 public:
  ReadSet() = default;
  explicit ReadSet(std::vector<Read> reads) : reads_(std::move(reads)) {}

  ReadId add(Read read) {
    reads_.push_back(std::move(read));
    return static_cast<ReadId>(reads_.size() - 1);
  }

  std::size_t size() const { return reads_.size(); }
  bool empty() const { return reads_.empty(); }

  const Read& operator[](ReadId id) const {
    FOCUS_ASSERT(id < reads_.size(), "read id out of range");
    return reads_[id];
  }
  Read& operator[](ReadId id) {
    FOCUS_ASSERT(id < reads_.size(), "read id out of range");
    return reads_[id];
  }

  auto begin() const { return reads_.begin(); }
  auto end() const { return reads_.end(); }

  /// Total bases across all reads.
  std::uint64_t total_bases() const {
    std::uint64_t n = 0;
    for (const auto& r : reads_) n += r.seq.size();
    return n;
  }

  void reserve(std::size_t n) { reads_.reserve(n); }

 private:
  std::vector<Read> reads_;
};

}  // namespace focus::io
