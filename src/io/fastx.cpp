#include "io/fastx.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace focus::io {

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "fastx parse error at line " << line_no << ": " << what;
  throw Error(os.str());
}

// Reads the next line, stripping a trailing '\r' (CRLF tolerance).
bool get_line(std::istream& in, std::string& line, std::size_t& line_no) {
  if (!std::getline(in, line)) return false;
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

bool valid_phred33(const std::string& qual) {
  for (char c : qual) {
    if (c < '!' || c > '~') return false;
  }
  return true;
}

// Uppercases sequence data in place. Lowercase bases are legal FASTA/FASTQ
// (soft-masked repeats), but every downstream consumer — k-mer seeding,
// reverse complementation, 2-bit packing — expects upper case; without this
// a soft-masked read silently produces zero seed hits.
void uppercase_seq(std::string& seq) {
  for (char& c : seq) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
}

}  // namespace

ReadSet parse_fasta(std::istream& in) {
  ReadSet reads;
  std::string line;
  std::size_t line_no = 0;
  Read current;
  bool in_record = false;

  auto flush = [&] {
    if (!in_record) return;
    if (current.seq.empty()) parse_fail(line_no, "FASTA record with empty sequence");
    uppercase_seq(current.seq);
    reads.add(std::move(current));
    current = Read{};
  };

  while (get_line(in, line, line_no)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      current.name = line.substr(1);
      if (current.name.empty()) parse_fail(line_no, "FASTA header with empty name");
    } else {
      if (!in_record) parse_fail(line_no, "sequence data before first '>' header");
      current.seq += line;
    }
  }
  flush();
  return reads;
}

ReadSet parse_fastq(std::istream& in) {
  ReadSet reads;
  std::string line;
  std::size_t line_no = 0;

  while (get_line(in, line, line_no)) {
    if (line.empty()) continue;
    if (line[0] != '@') parse_fail(line_no, "expected '@' record header");
    Read r;
    r.name = line.substr(1);
    if (r.name.empty()) parse_fail(line_no, "FASTQ header with empty name");
    if (!get_line(in, r.seq, line_no)) parse_fail(line_no, "truncated record: missing sequence");
    if (r.seq.empty()) parse_fail(line_no, "FASTQ record with empty sequence");
    if (!get_line(in, line, line_no)) parse_fail(line_no, "truncated record: missing '+' line");
    if (line.empty() || line[0] != '+') parse_fail(line_no, "expected '+' separator line");
    if (!get_line(in, r.qual, line_no)) parse_fail(line_no, "truncated record: missing quality line");
    if (r.qual.size() != r.seq.size()) {
      parse_fail(line_no, "quality length does not match sequence length");
    }
    if (!valid_phred33(r.qual)) parse_fail(line_no, "quality characters outside Phred+33 range");
    uppercase_seq(r.seq);
    reads.add(std::move(r));
  }
  return reads;
}

ReadSet parse_fastx(std::istream& in) {
  // Peek past blank lines to the first record marker.
  while (in.good()) {
    const int c = in.peek();
    if (c == '\n' || c == '\r') {
      in.get();
      continue;
    }
    if (c == '>') return parse_fasta(in);
    if (c == '@') return parse_fastq(in);
    if (c == std::char_traits<char>::eof()) break;
    throw Error("fastx parse error: input is neither FASTA ('>') nor FASTQ ('@')");
  }
  return ReadSet{};
}

ReadSet parse_fastx_string(const std::string& text) {
  std::istringstream in(text);
  return parse_fastx(in);
}

ReadSet load_fastx_file(const std::string& path) {
  std::ifstream in(path);
  FOCUS_CHECK(in.good(), "cannot open file: " + path);
  return parse_fastx(in);
}

void write_fasta(std::ostream& out, const ReadSet& reads, std::size_t line_width) {
  FOCUS_CHECK(line_width > 0, "line width must be positive");
  for (const auto& r : reads) {
    out << '>' << r.name << '\n';
    for (std::size_t i = 0; i < r.seq.size(); i += line_width) {
      out << r.seq.substr(i, line_width) << '\n';
    }
  }
}

void write_fastq(std::ostream& out, const ReadSet& reads) {
  for (const auto& r : reads) {
    out << '@' << r.name << '\n' << r.seq << '\n' << "+\n";
    if (r.qual.size() == r.seq.size()) {
      out << r.qual << '\n';
    } else {
      // FASTA-originated reads get maximal confidence placeholders.
      out << std::string(r.seq.size(), 'I') << '\n';
    }
  }
}

}  // namespace focus::io
