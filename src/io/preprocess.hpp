// Read preprocessing (paper §II-A).
//
// Each read is processed individually:
//   1. fixed-length 5' and 3' trims (adapter/tag removal),
//   2. 3' quality trimming with a sliding window of length l moving from the
//      3' end toward the 5' end in steps of k: once the window's average
//      quality exceeds the threshold q, the read is cut at the right end of
//      that window,
//   3. the reverse complement of every surviving read is generated and added
//      to the read set,
//   4. the read set is split into a user-specified number of subsets for
//      parallel pairwise alignment.
#pragma once

#include <vector>

#include "io/read.hpp"
#include "mpr/runtime.hpp"

namespace focus::io {

struct PreprocessConfig {
  /// Bases removed unconditionally from the 5' end.
  std::size_t trim5 = 0;
  /// Bases removed unconditionally from the 3' end.
  std::size_t trim3 = 0;
  /// Sliding window length l for quality trimming (0 disables).
  std::size_t window_len = 10;
  /// Window step size k.
  std::size_t window_step = 1;
  /// Minimum average Phred quality q; trimming stops at the first window
  /// (from the 3' end) whose average quality exceeds this value.
  double min_quality = 20.0;
  /// Reads shorter than this after trimming are dropped.
  std::size_t min_length = 30;
  /// Add the reverse complement of every kept read (paper behaviour: true).
  bool add_reverse_complements = true;
};

struct PreprocessStats {
  std::size_t input_reads = 0;
  std::size_t dropped_short = 0;
  std::size_t output_reads = 0;
  std::uint64_t bases_trimmed = 0;
};

/// Average Phred score of qual[begin, begin+len); qual is Phred+33.
double window_average_quality(const std::string& qual, std::size_t begin,
                              std::size_t len);

/// Applies the §II-A trimming to a single read. Returns false (and leaves
/// `read` unspecified) if the read does not survive `min_length`.
bool trim_read(Read& read, const PreprocessConfig& config);

/// Full preprocessing pass: trim, drop, reverse-complement-augment. Output
/// reads carry origin = input index and reverse = true for the generated
/// complements (which get a "/rc" name suffix).
ReadSet preprocess(const ReadSet& input, const PreprocessConfig& config,
                   PreprocessStats* stats = nullptr);

/// Splits read ids 0..n-1 into `subsets` contiguous, near-equal ranges
/// (paper: subsets processed pairwise by the parallel aligner).
std::vector<std::vector<ReadId>> split_into_subsets(std::size_t read_count,
                                                    std::size_t subsets);

struct ParallelPreprocessResult {
  ReadSet reads;
  PreprocessStats stats;
  mpr::RunStats run;
};

/// mpr-parallel preprocessing: each rank trims and reverse-complements a
/// contiguous chunk of the input; rank 0 gathers the chunks in rank order,
/// so the output is identical to the serial preprocess().
///
/// With a non-empty fault plan the stage runs under the shared
/// fault-tolerant phase protocol (mpr/ft_phase.hpp) over fixed 64-read
/// blocks — the block decomposition is a pure function of the read count, so
/// replayed blocks reproduce the serial output byte for byte regardless of
/// which surviving rank scans them. `symmetric` selects the rotating-
/// coordinator WAL protocol (survives a rank-0 crash) instead of
/// master/worker; it is a plain bool rather than a dist::DistConfig because
/// the io layer sits below dist.
ParallelPreprocessResult preprocess_parallel(
    const ReadSet& input, const PreprocessConfig& config, int nranks,
    mpr::CostModel cost = {}, const mpr::FaultPlan& fault_plan = {},
    const mpr::FaultConfig& fault = {}, bool symmetric = false);

}  // namespace focus::io
