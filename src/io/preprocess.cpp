#include "io/preprocess.hpp"

#include <algorithm>
#include <mutex>

#include "common/dna.hpp"
#include "mpr/ft_phase.hpp"

namespace focus::io {

double window_average_quality(const std::string& qual, std::size_t begin,
                              std::size_t len) {
  FOCUS_ASSERT(begin + len <= qual.size(), "quality window out of range");
  FOCUS_ASSERT(len > 0, "quality window must be non-empty");
  double sum = 0.0;
  for (std::size_t i = begin; i < begin + len; ++i) {
    sum += static_cast<double>(qual[i] - '!');
  }
  return sum / static_cast<double>(len);
}

namespace {

// Returns the kept length of the read after 3'-end sliding-window quality
// trimming, per §II-A: the window starts at the 3' end and moves toward the
// 5' end in steps of `window_step`; at the first window whose average quality
// exceeds `min_quality`, the read is trimmed from the right end of that
// window to the 3' end (i.e. the right end of the window becomes the new
// read end).
std::size_t quality_trim_point(const std::string& qual,
                               const PreprocessConfig& config) {
  const std::size_t n = qual.size();
  const std::size_t l = config.window_len;
  if (l == 0 || n < l) return n;
  // Window positions: right edge at n, n-step, n-2*step, ... while the
  // window fits.
  for (std::size_t right = n;; right -= config.window_step) {
    const std::size_t begin = right - l;
    if (window_average_quality(qual, begin, l) > config.min_quality) {
      return right;
    }
    if (begin < config.window_step) break;
  }
  return 0;  // no window passed: whole read is low quality
}

}  // namespace

bool trim_read(Read& read, const PreprocessConfig& config) {
  FOCUS_CHECK(config.window_step > 0 || config.window_len == 0,
              "window step must be positive when quality trimming is enabled");
  // A FASTQ record whose quality string is shorter than its sequence is
  // malformed input; without this check the substr below would throw a raw
  // std::out_of_range instead of a focus parse error.
  FOCUS_CHECK(read.qual.empty() || read.qual.size() == read.seq.size(),
              "malformed FASTQ record '" + read.name +
                  "': quality length does not match sequence length");
  // Fixed trims.
  if (config.trim5 + config.trim3 >= read.seq.size()) return false;
  read.seq = read.seq.substr(config.trim5,
                             read.seq.size() - config.trim5 - config.trim3);
  if (!read.qual.empty()) {
    read.qual = read.qual.substr(config.trim5, read.seq.size());
  }
  // Quality trim (FASTQ only).
  if (!read.qual.empty() && config.window_len > 0) {
    const std::size_t keep = quality_trim_point(read.qual, config);
    read.seq.resize(keep);
    read.qual.resize(keep);
  }
  return read.seq.size() >= config.min_length && !read.seq.empty();
}

ReadSet preprocess(const ReadSet& input, const PreprocessConfig& config,
                   PreprocessStats* stats) {
  PreprocessStats local;
  local.input_reads = input.size();

  ReadSet out;
  out.reserve(input.size() * (config.add_reverse_complements ? 2 : 1));
  for (ReadId i = 0; i < input.size(); ++i) {
    Read r = input[i];
    const std::uint64_t before = r.seq.size();
    if (!trim_read(r, config)) {
      ++local.dropped_short;
      continue;
    }
    local.bases_trimmed += before - r.seq.size();
    r.origin = i;
    r.reverse = false;
    const std::string fwd_seq = r.seq;
    const std::string fwd_name = r.name;
    const std::string fwd_qual = r.qual;
    out.add(std::move(r));
    if (config.add_reverse_complements) {
      Read rc;
      rc.name = fwd_name + "/rc";
      rc.seq = dna::reverse_complement(fwd_seq);
      // Base i of the RC read is base n-1-i of the forward read, so its
      // quality string is the forward one reversed; dropping it would strip
      // FASTQ reads of their qualities on the RC strand.
      rc.qual.assign(fwd_qual.rbegin(), fwd_qual.rend());
      rc.origin = i;
      rc.reverse = true;
      out.add(std::move(rc));
    }
  }
  local.output_reads = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

namespace {

/// Input reads per fault-tolerant preprocess partition. Fixed so the block
/// decomposition — and therefore the canonical output order — is a pure
/// function of the read count, independent of rank count and faults.
constexpr std::size_t kFtReadBlock = 64;

/// Per-block scan record: the trimmed (and RC-augmented) reads of one input
/// block plus the block's drop/trim counters. Blocks concatenated in
/// ascending id order reproduce the serial preprocess() output exactly.
struct PreprocessBlock {
  std::vector<Read> reads;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
};

PreprocessBlock preprocess_block(const ReadSet& input,
                                 const PreprocessConfig& config,
                                 std::uint32_t p, double* work) {
  PreprocessBlock block;
  const std::size_t begin = static_cast<std::size_t>(p) * kFtReadBlock;
  const std::size_t end = std::min(input.size(), begin + kFtReadBlock);
  for (std::size_t i = begin; i < end; ++i) {
    Read r = input[static_cast<ReadId>(i)];
    *work += static_cast<double>(r.seq.size());
    const std::uint64_t before = r.seq.size();
    if (!trim_read(r, config)) {
      ++block.dropped;
      continue;
    }
    block.trimmed += before - r.seq.size();
    r.origin = static_cast<ReadId>(i);
    r.reverse = false;
    const std::string fwd_seq = r.seq;
    const std::string fwd_name = r.name;
    const std::string fwd_qual = r.qual;
    block.reads.push_back(std::move(r));
    if (config.add_reverse_complements) {
      Read rc;
      rc.name = fwd_name + "/rc";
      rc.seq = dna::reverse_complement(fwd_seq);
      rc.qual.assign(fwd_qual.rbegin(), fwd_qual.rend());
      rc.origin = static_cast<ReadId>(i);
      rc.reverse = true;
      block.reads.push_back(std::move(rc));
    }
  }
  return block;
}

void pack_block(const PreprocessBlock& block, mpr::Message& m) {
  m.pack(static_cast<std::uint64_t>(block.reads.size()));
  for (const Read& r : block.reads) {
    m.pack_string(r.name);
    m.pack_string(r.seq);
    m.pack_string(r.qual);
    m.pack(r.origin);
    m.pack(static_cast<std::uint8_t>(r.reverse ? 1 : 0));
  }
  m.pack(block.dropped);
  m.pack(block.trimmed);
}

PreprocessBlock unpack_block(mpr::Message& m) {
  PreprocessBlock block;
  const auto count = m.unpack<std::uint64_t>();
  // A block record can never exceed its input block (×2 with complements) —
  // reject hostile counts before the read loop starts allocating.
  FOCUS_CHECK(count <= 2 * kFtReadBlock,
              "preprocess block record count exceeds block size");
  block.reads.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Read r;
    r.name = m.unpack_string();
    r.seq = m.unpack_string();
    r.qual = m.unpack_string();
    r.origin = m.unpack<ReadId>();
    r.reverse = m.unpack<std::uint8_t>() != 0;
    block.reads.push_back(std::move(r));
  }
  block.dropped = m.unpack<std::uint64_t>();
  block.trimmed = m.unpack<std::uint64_t>();
  return block;
}

/// Concatenate collected blocks (ascending id order) into the final result.
/// Overwrites rather than appends: under the symmetric protocol a successor
/// coordinator re-assembles from the log after a predecessor may already
/// have partially published.
void assemble_blocks(const ReadSet& input, std::vector<PreprocessBlock> recs,
                     ParallelPreprocessResult* result) {
  ReadSet reads;
  PreprocessStats stats;
  stats.input_reads = input.size();
  for (auto& block : recs) {
    for (auto& r : block.reads) reads.add(std::move(r));
    stats.dropped_short += static_cast<std::size_t>(block.dropped);
    stats.bases_trimmed += block.trimmed;
  }
  stats.output_reads = reads.size();
  result->reads = std::move(reads);
  result->stats = stats;
}

ParallelPreprocessResult preprocess_parallel_ft(const ReadSet& input,
                                                const PreprocessConfig& config,
                                                int nranks, mpr::CostModel cost,
                                                const mpr::FaultPlan& fault_plan,
                                                const mpr::FaultConfig& fault,
                                                bool symmetric) {
  const auto nparts = static_cast<std::uint32_t>(
      (input.size() + kFtReadBlock - 1) / kFtReadBlock);
  ParallelPreprocessResult result;

  const auto scan_one = [&](std::uint32_t p, double* work) {
    return preprocess_block(input, config, p, work);
  };
  const auto unpack_one = [](mpr::Message& m) { return unpack_block(m); };
  const auto scan_and_pack = [&](std::uint32_t phase, std::uint32_t p,
                                 mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown preprocess phase in scan command");
    pack_block(preprocess_block(input, config, p, work), frame);
  };

  if (symmetric) {
    mpr::SymWal wal;
    wal.live.assign(static_cast<std::size_t>(nranks), 1);
    result.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          mpr::ft_sym_drive(
              comm, wal, fault, scan_and_pack,
              [&](std::uint32_t phase_start) {
                if (phase_start == 0) {
                  auto recs = mpr::sym_collect_phase<PreprocessBlock>(
                      comm, wal, nparts, 0, fault, scan_one, unpack_one,
                      mpr::FtOrder::kAscending);
                  mpr::SymWal::Entry entry;
                  entry.payload.pack(static_cast<std::uint32_t>(recs.size()));
                  for (const auto& block : recs) {
                    pack_block(block, entry.payload);
                  }
                  mpr::sym_wal_commit(comm, wal, std::move(entry));
                }
                // Assemble from the durable record — identical whether this
                // rank collected the blocks itself or inherited them from a
                // crashed predecessor.
                mpr::Message payload;
                {
                  std::lock_guard<std::mutex> lock(wal.mu);
                  payload = wal.entries.front().payload;
                }
                const auto count = payload.unpack<std::uint32_t>();
                FOCUS_CHECK(count == nparts,
                            "preprocess log holds the wrong block count");
                std::vector<PreprocessBlock> recs;
                recs.reserve(count);
                for (std::uint32_t i = 0; i < count; ++i) {
                  recs.push_back(unpack_block(payload));
                }
                FOCUS_CHECK(payload.fully_consumed(),
                            "trailing bytes in preprocess log");
                assemble_blocks(input, std::move(recs), &result);
              });
        },
        cost, fault_plan);
    return result;
  }

  result.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        if (comm.rank() == 0) {
          mpr::FtMasterState st;
          st.live.assign(static_cast<std::size_t>(comm.size()), 1);
          auto recs = mpr::ft_collect_phase<PreprocessBlock>(
              comm, st, nparts, 0, fault, scan_one, unpack_one,
              mpr::FtOrder::kAscending);
          assemble_blocks(input, std::move(recs), &result);
          mpr::ft_shutdown_workers(comm, st);
        } else {
          mpr::ft_worker_loop(comm, scan_and_pack);
        }
      },
      cost, fault_plan);
  return result;
}

}  // namespace

ParallelPreprocessResult preprocess_parallel(
    const ReadSet& input, const PreprocessConfig& config, int nranks,
    mpr::CostModel cost, const mpr::FaultPlan& fault_plan,
    const mpr::FaultConfig& fault, bool symmetric) {
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  if (!fault_plan.empty()) {
    return preprocess_parallel_ft(input, config, nranks, cost, fault_plan,
                                  fault, symmetric);
  }
  ParallelPreprocessResult result;
  result.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // Contiguous chunk of input reads for this rank.
        const std::size_t n = input.size();
        const auto p = static_cast<std::size_t>(comm.size());
        const auto me = static_cast<std::size_t>(comm.rank());
        const std::size_t begin = n * me / p;
        const std::size_t end = n * (me + 1) / p;

        ReadSet local;
        PreprocessStats local_stats;
        local_stats.input_reads = end - begin;
        double bases = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          Read r = input[static_cast<ReadId>(i)];
          bases += static_cast<double>(r.seq.size());
          const std::uint64_t before = r.seq.size();
          if (!trim_read(r, config)) {
            ++local_stats.dropped_short;
            continue;
          }
          local_stats.bases_trimmed += before - r.seq.size();
          r.origin = static_cast<ReadId>(i);
          r.reverse = false;
          const std::string fwd_seq = r.seq;
          const std::string fwd_name = r.name;
          const std::string fwd_qual = r.qual;
          local.add(std::move(r));
          if (config.add_reverse_complements) {
            Read rc;
            rc.name = fwd_name + "/rc";
            rc.seq = dna::reverse_complement(fwd_seq);
            rc.qual.assign(fwd_qual.rbegin(), fwd_qual.rend());
            rc.origin = static_cast<ReadId>(i);
            rc.reverse = true;
            local.add(std::move(rc));
          }
        }
        local_stats.output_reads = local.size();
        comm.charge(bases);

        // Ship the chunk to rank 0 (reads serialized field by field).
        mpr::Message msg;
        msg.pack(static_cast<std::uint64_t>(local.size()));
        for (const Read& r : local) {
          msg.pack_string(r.name);
          msg.pack_string(r.seq);
          msg.pack_string(r.qual);
          msg.pack(r.origin);
          msg.pack(static_cast<std::uint8_t>(r.reverse ? 1 : 0));
        }
        msg.pack(static_cast<std::uint64_t>(local_stats.dropped_short));
        msg.pack(static_cast<std::uint64_t>(local_stats.bases_trimmed));
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          result.stats.input_reads = input.size();
          for (auto& m : gathered) {
            const auto count = m.unpack<std::uint64_t>();
            for (std::uint64_t i = 0; i < count; ++i) {
              Read r;
              r.name = m.unpack_string();
              r.seq = m.unpack_string();
              r.qual = m.unpack_string();
              r.origin = m.unpack<ReadId>();
              r.reverse = m.unpack<std::uint8_t>() != 0;
              result.reads.add(std::move(r));
            }
            result.stats.dropped_short +=
                static_cast<std::size_t>(m.unpack<std::uint64_t>());
            result.stats.bases_trimmed += m.unpack<std::uint64_t>();
            FOCUS_CHECK(m.fully_consumed(), "trailing bytes in gathered frame");
          }
          result.stats.output_reads = result.reads.size();
        }
        comm.barrier();
      },
      cost);
  return result;
}

std::vector<std::vector<ReadId>> split_into_subsets(std::size_t read_count,
                                                    std::size_t subsets) {
  FOCUS_CHECK(subsets > 0, "subset count must be positive");
  std::vector<std::vector<ReadId>> out(subsets);
  const std::size_t base = read_count / subsets;
  const std::size_t extra = read_count % subsets;
  ReadId next = 0;
  for (std::size_t s = 0; s < subsets; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out[s].reserve(len);
    for (std::size_t i = 0; i < len; ++i) out[s].push_back(next++);
  }
  FOCUS_ASSERT(next == read_count, "subset split lost reads");
  return out;
}

}  // namespace focus::io
