// FASTA/FASTQ parsing and writing (paper §II-A: "Focus accepts both fasta
// and fastq data as input").
//
// The parsers are strict about structure (record markers, FASTQ 4-line
// grammar, quality/sequence length agreement) and throw focus::Error with the
// offending line number; they are permissive about sequence alphabet
// (non-ACGT characters are preserved and handled downstream), but lowercase
// (soft-masked) bases are uppercased so k-mer seeding sees them. CRLF line
// endings are tolerated everywhere.
#pragma once

#include <iosfwd>
#include <string>

#include "io/read.hpp"

namespace focus::io {

/// Parses FASTA; multi-line sequences are concatenated.
ReadSet parse_fasta(std::istream& in);

/// Parses FASTQ (4-line records; '+' separator line; Phred+33 qualities).
ReadSet parse_fastq(std::istream& in);

/// Auto-detects FASTA ('>') vs FASTQ ('@') from the first record marker.
ReadSet parse_fastx(std::istream& in);

/// Convenience overloads over whole strings (used heavily by tests).
ReadSet parse_fastx_string(const std::string& text);

/// File loaders; throw focus::Error if the file cannot be opened.
ReadSet load_fastx_file(const std::string& path);

/// Writers.
void write_fasta(std::ostream& out, const ReadSet& reads,
                 std::size_t line_width = 70);
void write_fastq(std::ostream& out, const ReadSet& reads);

}  // namespace focus::io
